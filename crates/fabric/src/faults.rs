//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is generated up front from a seed: every crash window,
//! latency-inflation window, and CPU-stall window is fixed before the
//! simulation starts, and per-message drops are decided by hashing a send
//! counter. Because the executor itself is deterministic, two runs with the
//! same (workload seed, fault seed) pair observe byte-identical fault
//! schedules — which is what lets the soak tests assert bit-identical
//! outcomes under chaos.
//!
//! The crash model is NIC fail-stop with state-preserving restart: while a
//! node is inside a crash window, verbs targeting it fail with
//! [`FabricError::Unreachable`], verbs issued from it fail the same way, and
//! two-sided messages to or from it vanish. Registered memory and daemon
//! tasks survive the window (the "restart" rejoins with state intact), so
//! protocols face the hard part — timeouts, retries, and duplicate
//! suppression — without the simulator having to tear tasks down.

use std::cell::{Cell, RefCell};

use dc_sim::time::ms;
use dc_sim::SimTime;
use dc_trace::Counter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::NodeId;

/// Why a fabric operation failed under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// The named node was inside a crash window when the operation reached
    /// its NIC (as issuer or target).
    Unreachable(NodeId),
    /// The message was dropped in flight (never delivered).
    Dropped,
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Unreachable(n) => write!(f, "node {} unreachable (crashed)", n.0),
            FabricError::Dropped => write!(f, "message dropped in flight"),
        }
    }
}

/// Bounded retransmission schedule: exponential backoff from `backoff_ns`
/// up to `backoff_cap_ns`, at most `max_attempts` tries. Never infinite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub backoff_ns: SimTime,
    /// Backoff ceiling for the exponential schedule.
    pub backoff_cap_ns: SimTime,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 24 attempts, 50us doubling to a 20ms cap: rides out the default
        // crash windows (tens of ms) with margin, yet gives up within ~0.5s
        // of simulated time instead of spinning forever.
        RetryPolicy {
            max_attempts: 24,
            backoff_ns: 50_000,
            backoff_cap_ns: 20_000_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep after failed attempt number `attempt` (0-based).
    pub fn backoff_after(&self, attempt: u32) -> SimTime {
        let shifted = self.backoff_ns.saturating_shl(attempt.min(40));
        shifted.min(self.backoff_cap_ns)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, by: u32) -> u64 {
        if by >= self.leading_zeros() {
            u64::MAX
        } else {
            self << by
        }
    }
}

/// Knobs for [`FaultPlan::generate`]. All windows are scheduled within
/// `[0, horizon_ns)` of virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Virtual-time horizon within which fault windows are placed.
    pub horizon_ns: SimTime,
    /// Upper bound on crash windows drawn per (non-immune) node.
    pub max_crashes_per_node: u32,
    /// Crash-window duration bounds.
    pub crash_min_ns: SimTime,
    /// See `crash_min_ns`.
    pub crash_max_ns: SimTime,
    /// Per-message drop probability on two-sided sends, in `[0, 1]`.
    pub drop_prob: f64,
    /// Number of global latency-inflation windows.
    pub latency_windows: u32,
    /// Latency multiplication factor bounds (≥ 1.0).
    pub latency_factor_min: f64,
    /// See `latency_factor_min`.
    pub latency_factor_max: f64,
    /// Latency-window duration bounds.
    pub latency_min_ns: SimTime,
    /// See `latency_min_ns`.
    pub latency_max_ns: SimTime,
    /// Upper bound on CPU-stall windows drawn per (non-immune) node.
    pub max_stalls_per_node: u32,
    /// Stall duration bounds (CPU time hogged per window).
    pub stall_min_ns: SimTime,
    /// See `stall_min_ns`.
    pub stall_max_ns: SimTime,
    /// Nodes exempt from crashes and stalls (e.g. a backend origin whose
    /// loss would make every outcome undefined). Drops and latency still
    /// apply to their traffic.
    pub immune_nodes: Vec<NodeId>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            horizon_ns: ms(1_000),
            max_crashes_per_node: 1,
            crash_min_ns: ms(5),
            crash_max_ns: ms(40),
            drop_prob: 0.02,
            latency_windows: 3,
            latency_factor_min: 1.5,
            latency_factor_max: 4.0,
            latency_min_ns: ms(10),
            latency_max_ns: ms(50),
            max_stalls_per_node: 2,
            stall_min_ns: ms(5),
            stall_max_ns: ms(20),
            immune_nodes: Vec::new(),
        }
    }
}

/// A node-down interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// Window start (inclusive), virtual ns.
    pub start: SimTime,
    /// Window end (exclusive), virtual ns.
    pub end: SimTime,
}

/// A global latency-inflation interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyWindow {
    /// Window start (inclusive), virtual ns.
    pub start: SimTime,
    /// Window end (exclusive), virtual ns.
    pub end: SimTime,
    /// Multiplication factor in thousandths (1500 = 1.5×). Integral so that
    /// inflated durations stay exact and reproducible.
    pub factor_milli: u64,
}

/// A CPU-hog interval: `dur` ns of work injected on `node` at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallWindow {
    /// The stalled node.
    pub node: NodeId,
    /// When the hog job arrives, virtual ns.
    pub start: SimTime,
    /// CPU work the hog demands, ns.
    pub dur: SimTime,
}

/// Counters of faults actually exercised, for asserting that a soak run
/// really injected something.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped in flight.
    pub dropped_msgs: u64,
    /// Verb/send attempts that failed on a crashed node.
    pub unreachable_ops: u64,
    /// Retries performed by reliable wrappers.
    pub retries: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fully materialized, seeded fault schedule. Install on a cluster with
/// [`crate::Cluster::install_faults`]; the cluster consults it on every verb
/// and send.
pub struct FaultPlan {
    seed: u64,
    crashes: Vec<CrashWindow>,
    latency: Vec<LatencyWindow>,
    stalls: Vec<StallWindow>,
    /// Drop iff `splitmix64(salt ^ counter) < drop_threshold`.
    drop_threshold: u64,
    drop_salt: u64,
    msg_counter: Cell<u64>,
    dropped_msgs: Cell<u64>,
    unreachable_ops: Cell<u64>,
    retries: Cell<u64>,
    /// Registry counters mirroring the cells above, bound when the plan is
    /// installed on a cluster so `fault.*` metrics appear alongside the
    /// legacy [`FaultStats`] snapshot.
    mirror: RefCell<Option<FaultMirror>>,
}

struct FaultMirror {
    dropped_msgs: Counter,
    unreachable_ops: Counter,
    retries: Counter,
}

impl FaultPlan {
    /// Materialize the schedule for a `nodes`-node cluster from `seed`.
    /// Identical `(seed, cfg, nodes)` triples yield identical plans.
    pub fn generate(seed: u64, cfg: &FaultConfig, nodes: usize) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&cfg.drop_prob),
            "drop_prob out of range"
        );
        assert!(
            cfg.latency_factor_min >= 1.0 && cfg.latency_factor_max >= cfg.latency_factor_min,
            "latency factors must be >= 1 and ordered"
        );
        let mut rng = StdRng::seed_from_u64(splitmix64(seed));
        let mut crashes = Vec::new();
        let mut stalls = Vec::new();
        for n in 0..nodes {
            let node = NodeId(n as u32);
            let immune = cfg.immune_nodes.contains(&node);
            let n_crashes = rng.gen_range(0..=cfg.max_crashes_per_node);
            for _ in 0..n_crashes {
                let start = rng.gen_range(0..cfg.horizon_ns.max(1));
                let dur = rng.gen_range(cfg.crash_min_ns..=cfg.crash_max_ns);
                if !immune {
                    crashes.push(CrashWindow {
                        node,
                        start,
                        end: start.saturating_add(dur),
                    });
                }
            }
            let n_stalls = rng.gen_range(0..=cfg.max_stalls_per_node);
            for _ in 0..n_stalls {
                let start = rng.gen_range(0..cfg.horizon_ns.max(1));
                let dur = rng.gen_range(cfg.stall_min_ns..=cfg.stall_max_ns);
                if !immune {
                    stalls.push(StallWindow { node, start, dur });
                }
            }
        }
        let mut latency = Vec::new();
        for _ in 0..cfg.latency_windows {
            let start = rng.gen_range(0..cfg.horizon_ns.max(1));
            let dur = rng.gen_range(cfg.latency_min_ns..=cfg.latency_max_ns);
            let factor = rng.gen_range(
                cfg.latency_factor_min
                    ..cfg
                        .latency_factor_max
                        .max(cfg.latency_factor_min + f64::EPSILON),
            );
            latency.push(LatencyWindow {
                start,
                end: start.saturating_add(dur),
                factor_milli: (factor * 1000.0) as u64,
            });
        }
        // drop_prob maps to a threshold over the full u64 hash range.
        let drop_threshold = if cfg.drop_prob >= 1.0 {
            u64::MAX
        } else {
            (cfg.drop_prob * (u64::MAX as f64)) as u64
        };
        FaultPlan {
            seed,
            crashes,
            latency,
            stalls,
            drop_threshold,
            drop_salt: splitmix64(seed ^ 0xD09F_5EED_0000_0001),
            msg_counter: Cell::new(0),
            dropped_msgs: Cell::new(0),
            unreachable_ops: Cell::new(0),
            retries: Cell::new(0),
            mirror: RefCell::new(None),
        }
    }

    /// Hand-build a plan from explicit windows — for targeted tests and
    /// experiments that need a specific scenario rather than a seeded one.
    /// `seed` drives only the message-drop stream.
    pub fn from_parts(
        seed: u64,
        crashes: Vec<CrashWindow>,
        latency: Vec<LatencyWindow>,
        stalls: Vec<StallWindow>,
        drop_prob: f64,
    ) -> FaultPlan {
        assert!((0.0..=1.0).contains(&drop_prob), "drop_prob out of range");
        let drop_threshold = if drop_prob >= 1.0 {
            u64::MAX
        } else {
            (drop_prob * (u64::MAX as f64)) as u64
        };
        FaultPlan {
            seed,
            crashes,
            latency,
            stalls,
            drop_threshold,
            drop_salt: splitmix64(seed ^ 0xD09F_5EED_0000_0001),
            msg_counter: Cell::new(0),
            dropped_msgs: Cell::new(0),
            unreachable_ops: Cell::new(0),
            retries: Cell::new(0),
            mirror: RefCell::new(None),
        }
    }

    /// Register the `fault.*` counters without binding them to any plan.
    /// `Cluster::new` calls this so clean (faultless) runs export the keys
    /// as explicit zeros — otherwise a metrics diff between a clean and a
    /// faulted run can't tell "no faults exercised" from "fault counters
    /// not wired", because absence and zero look the same.
    pub fn preregister_counters(registry: &dc_trace::Registry) {
        registry.counter("fault.dropped_msgs");
        registry.counter("fault.unreachable_ops");
        registry.counter("fault.retries");
    }

    /// Bind `fault.*` counters from `registry` so every exercised fault is
    /// visible through the unified metrics as well as [`FaultPlan::stats`].
    /// Called by `Cluster::install_faults`; past exercise (from a plan used
    /// before installation) is carried over.
    pub fn bind_counters(&self, registry: &dc_trace::Registry) {
        let m = FaultMirror {
            dropped_msgs: registry.counter("fault.dropped_msgs"),
            unreachable_ops: registry.counter("fault.unreachable_ops"),
            retries: registry.counter("fault.retries"),
        };
        m.dropped_msgs.add(self.dropped_msgs.get());
        m.unreachable_ops.add(self.unreachable_ops.get());
        m.retries.add(self.retries.get());
        *self.mirror.borrow_mut() = Some(m);
    }

    /// The seed this plan was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `node` is inside a crash window at virtual time `now`.
    pub fn is_down(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|w| w.node == node && w.start <= now && now < w.end)
    }

    /// The latency multiplier (in thousandths; 1000 = none) in force at
    /// `now`. Overlapping windows take the maximum factor.
    pub fn latency_factor_milli(&self, now: SimTime) -> u64 {
        self.latency
            .iter()
            .filter(|w| w.start <= now && now < w.end)
            .map(|w| w.factor_milli)
            .max()
            .unwrap_or(1000)
            .max(1000)
    }

    /// Decide (and record) whether the next message is dropped. Each call
    /// consumes one counter value, so the decision sequence is a pure
    /// function of the seed and the order of sends.
    pub fn should_drop(&self) -> bool {
        let c = self.msg_counter.get();
        self.msg_counter.set(c + 1);
        let dropped = splitmix64(self.drop_salt ^ c) < self.drop_threshold;
        if dropped {
            self.dropped_msgs.set(self.dropped_msgs.get() + 1);
            if let Some(m) = &*self.mirror.borrow() {
                m.dropped_msgs.inc();
            }
        }
        dropped
    }

    /// Pure per-stream drop draw: decides draw number `n` of logical
    /// stream `stream` without touching the shared message counter.
    ///
    /// [`Self::should_drop`] consumes one *global* counter, so the drop
    /// sequence depends on the global interleaving of callers — fine on a
    /// single thread, but a sharded run would make the sequence a function
    /// of shard count. Callers that partition work across shards keep one
    /// monotonically increasing draw counter per stream (e.g. per proxy)
    /// and call this instead: the outcome is a pure function of
    /// `(seed, stream, n)`, so it is identical at every shard count. The
    /// drop *probability* per draw matches `should_drop` exactly.
    pub fn stream_should_drop(&self, stream: u64, n: u64) -> bool {
        let c = splitmix64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(n));
        let dropped = splitmix64(self.drop_salt ^ c) < self.drop_threshold;
        if dropped {
            self.dropped_msgs.set(self.dropped_msgs.get() + 1);
            if let Some(m) = &*self.mirror.borrow() {
                m.dropped_msgs.inc();
            }
        }
        dropped
    }

    /// Record an operation that failed on a crashed node.
    pub fn note_unreachable(&self) {
        self.unreachable_ops.set(self.unreachable_ops.get() + 1);
        if let Some(m) = &*self.mirror.borrow() {
            m.unreachable_ops.inc();
        }
    }

    /// Record one retry performed by a reliable wrapper.
    pub fn note_retry(&self) {
        self.retries.set(self.retries.get() + 1);
        if let Some(m) = &*self.mirror.borrow() {
            m.retries.inc();
        }
    }

    /// The scheduled crash windows.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The scheduled latency windows.
    pub fn latency_windows(&self) -> &[LatencyWindow] {
        &self.latency
    }

    /// The scheduled CPU-stall windows.
    pub fn stall_windows(&self) -> &[StallWindow] {
        &self.stalls
    }

    /// Snapshot of the exercise counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dropped_msgs: self.dropped_msgs.get(),
            unreachable_ops: self.unreachable_ops.get(),
            retries: self.retries.get(),
        }
    }
}

/// Scale `ns` by a milli-factor (1000 = identity, exact).
#[inline]
pub fn inflate(ns: SimTime, factor_milli: u64) -> SimTime {
    if factor_milli == 1000 {
        ns
    } else {
        ns.saturating_mul(factor_milli) / 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_cfg() -> FaultConfig {
        FaultConfig {
            max_crashes_per_node: 2,
            latency_windows: 4,
            max_stalls_per_node: 2,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = chaotic_cfg();
        let a = FaultPlan::generate(7, &cfg, 6);
        let b = FaultPlan::generate(7, &cfg, 6);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.stalls, b.stalls);
        assert_eq!(a.drop_threshold, b.drop_threshold);
        let da: Vec<bool> = (0..1000).map(|_| a.should_drop()).collect();
        let db: Vec<bool> = (0..1000).map(|_| b.should_drop()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = chaotic_cfg();
        let a = FaultPlan::generate(1, &cfg, 6);
        let b = FaultPlan::generate(2, &cfg, 6);
        // Schedules are random; at minimum the drop streams must diverge.
        let da: Vec<bool> = (0..4096).map(|_| a.should_drop()).collect();
        let db: Vec<bool> = (0..4096).map(|_| b.should_drop()).collect();
        assert_ne!((a.crashes.clone(), da), (b.crashes.clone(), db));
    }

    #[test]
    fn immune_nodes_never_crash_or_stall() {
        let cfg = FaultConfig {
            max_crashes_per_node: 3,
            max_stalls_per_node: 3,
            immune_nodes: vec![NodeId(0), NodeId(3)],
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(42, &cfg, 5);
        for w in p.crash_windows() {
            assert!(w.node != NodeId(0) && w.node != NodeId(3));
        }
        for w in p.stall_windows() {
            assert!(w.node != NodeId(0) && w.node != NodeId(3));
        }
    }

    #[test]
    fn is_down_tracks_windows() {
        let cfg = FaultConfig {
            max_crashes_per_node: 1,
            ..FaultConfig::default()
        };
        // Find a seed that actually crashes node 1.
        let plan = (0..64)
            .map(|s| FaultPlan::generate(s, &cfg, 4))
            .find(|p| p.crash_windows().iter().any(|w| w.node == NodeId(1)))
            .expect("some seed crashes node 1");
        let w = *plan
            .crash_windows()
            .iter()
            .find(|w| w.node == NodeId(1))
            .unwrap();
        assert!(!plan.is_down(NodeId(1), w.start.saturating_sub(1)));
        assert!(plan.is_down(NodeId(1), w.start));
        assert!(plan.is_down(NodeId(1), w.end - 1));
        assert!(!plan.is_down(NodeId(1), w.end));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let cfg = FaultConfig {
            drop_prob: 0.1,
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(9, &cfg, 2);
        let n = 100_000;
        let drops = (0..n).filter(|_| p.should_drop()).count();
        let rate = drops as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "rate={rate}");
        assert_eq!(p.stats().dropped_msgs, drops as u64);
    }

    #[test]
    fn zero_drop_prob_never_drops() {
        let cfg = FaultConfig {
            drop_prob: 0.0,
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(3, &cfg, 2);
        assert!((0..10_000).all(|_| !p.should_drop()));
    }

    #[test]
    fn latency_factor_defaults_to_identity() {
        let cfg = FaultConfig {
            latency_windows: 0,
            ..FaultConfig::default()
        };
        let p = FaultPlan::generate(5, &cfg, 2);
        assert_eq!(p.latency_factor_milli(0), 1000);
        assert_eq!(inflate(12_345, 1000), 12_345);
        assert_eq!(inflate(1_000, 2500), 2_500);
    }

    #[test]
    fn retry_policy_backoff_is_capped() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_after(0), p.backoff_ns);
        assert_eq!(p.backoff_after(1), p.backoff_ns * 2);
        assert_eq!(p.backoff_after(63), p.backoff_cap_ns);
        let total: u64 = (0..p.max_attempts).map(|a| p.backoff_after(a)).sum();
        // The whole schedule must outlast the longest default crash window.
        assert!(total > FaultConfig::default().crash_max_ns * 2);
    }
}
