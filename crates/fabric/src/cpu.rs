//! Per-node CPU model: a round-robin scheduler over a configurable number of
//! cores, with kernel statistics published into registered memory.
//!
//! Work is executed with [`CpuModel::execute`], which time-slices the job at
//! the preemption quantum and competes FIFO for cores. This produces the one
//! behaviour all of the paper's results hinge on: anything that needs the
//! target node's CPU (socket processing, a user-level monitoring daemon, the
//! SRSL lock server) is delayed by roughly `run_queue × quantum` when the
//! node is loaded, while one-sided RDMA completes unperturbed.
//!
//! Every state change (thread spawn/exit, run-queue transitions, connection
//! counts) is immediately re-encoded into the node's kernel-statistics
//! region, so an `rdma_read` of that region at any virtual instant sees the
//! true current values — the simulated analogue of registering kernel data
//! structures with the NIC.

use std::cell::RefCell;
use std::rc::Rc;

use dc_sim::sync::Semaphore;
use dc_sim::{SimHandle, SimTime};
use serde::{Deserialize, Serialize};

use crate::kstat::KernelStats;
use crate::mem::RegionData;

/// Scheduling parameters of a node CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Number of cores (parallel execution slots).
    pub cores: usize,
    /// Preemption quantum: the longest uninterrupted slice one job holds a
    /// core before returning to the back of the run queue.
    pub quantum_ns: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        // Single-core nodes with a 1 ms quantum: the paper's back-end servers
        // were effectively single-processor for the monitored services.
        CpuConfig {
            cores: 1,
            quantum_ns: 1_000_000,
        }
    }
}

struct CpuState {
    stats: KernelStats,
}

/// A node's CPU. Cloning yields another handle to the same CPU.
#[derive(Clone)]
pub struct CpuModel {
    sim: SimHandle,
    cores: Semaphore,
    quantum: u64,
    state: Rc<RefCell<CpuState>>,
    kstat: RegionData,
}

impl CpuModel {
    /// Create a CPU whose statistics are published into `kstat` (the node's
    /// registered kernel-statistics region).
    pub fn new(sim: SimHandle, cfg: CpuConfig, kstat: RegionData) -> Self {
        assert!(cfg.cores > 0, "a node needs at least one core");
        assert!(cfg.quantum_ns > 0, "preemption quantum must be positive");
        let cpu = CpuModel {
            sim,
            cores: Semaphore::new(cfg.cores),
            quantum: cfg.quantum_ns,
            state: Rc::new(RefCell::new(CpuState {
                stats: KernelStats::default(),
            })),
            kstat,
        };
        cpu.publish();
        cpu
    }

    fn publish(&self) {
        let mut st = self.state.borrow_mut();
        st.stats.version += 1;
        st.stats.encode_into(&self.kstat);
    }

    fn update(&self, f: impl FnOnce(&mut KernelStats)) {
        f(&mut self.state.borrow_mut().stats);
        self.publish();
    }

    /// Execute `work_ns` of CPU time, competing round-robin with everything
    /// else on this node. Returns when the work has fully run.
    pub async fn execute(&self, work_ns: SimTime) {
        if work_ns == 0 {
            return;
        }
        self.update(|s| s.run_queue += 1);
        let mut remaining = work_ns;
        while remaining > 0 {
            let slice = remaining.min(self.quantum);
            self.cores.acquire().await;
            self.sim.sleep(slice).await;
            self.update(|s| s.busy_ns += slice);
            self.cores.release();
            remaining -= slice;
        }
        self.update(|s| s.run_queue -= 1);
    }

    /// Register an application thread (Fig 8a monitors this count).
    pub fn thread_started(&self) {
        self.update(|s| s.app_threads += 1);
    }

    /// Unregister an application thread.
    pub fn thread_exited(&self) {
        self.update(|s| {
            debug_assert!(s.app_threads > 0);
            s.app_threads -= 1;
        });
    }

    /// Record an opened connection.
    pub fn conn_opened(&self) {
        self.update(|s| s.conns += 1);
    }

    /// Record a closed connection.
    pub fn conn_closed(&self) {
        self.update(|s| {
            debug_assert!(s.conns > 0);
            s.conns -= 1;
        });
    }

    /// Record a request entering the application accept queue.
    pub fn accept_enqueued(&self) {
        self.update(|s| s.accept_queue += 1);
    }

    /// Record a request leaving the application accept queue.
    pub fn accept_dequeued(&self) {
        self.update(|s| {
            debug_assert!(s.accept_queue > 0);
            s.accept_queue -= 1;
        });
    }

    /// Node-local snapshot of the kernel statistics (what a local daemon
    /// reads for free; remote readers must pay a fabric round trip).
    pub fn snapshot(&self) -> KernelStats {
        self.state.borrow().stats
    }

    /// Current run-queue length (running + ready jobs).
    pub fn run_queue(&self) -> u64 {
        self.state.borrow().stats.run_queue
    }

    /// Preemption quantum in nanoseconds.
    pub fn quantum_ns(&self) -> u64 {
        self.quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::time::{ms, us};
    use dc_sim::Sim;

    fn cpu(sim: &Sim, cores: usize, quantum: u64) -> CpuModel {
        CpuModel::new(
            sim.handle(),
            CpuConfig {
                cores,
                quantum_ns: quantum,
            },
            RegionData::new(crate::kstat::KSTAT_REGION_LEN),
        )
    }

    #[test]
    fn single_job_takes_exact_work_time() {
        let sim = Sim::new();
        let c = cpu(&sim, 1, ms(1));
        let h = sim.handle();
        let t = sim.run_to(async move {
            c.execute(us(300)).await;
            h.now()
        });
        assert_eq!(t, us(300));
    }

    #[test]
    fn two_jobs_on_one_core_share_round_robin() {
        let sim = Sim::new();
        let c = cpu(&sim, 1, us(100));
        let h = sim.handle();
        let c1 = c.clone();
        let h1 = h.clone();
        let j1 = sim.spawn(async move {
            c1.execute(us(300)).await;
            h1.now()
        });
        let c2 = c.clone();
        let h2 = h.clone();
        let j2 = sim.spawn(async move {
            c2.execute(us(300)).await;
            h2.now()
        });
        sim.run();
        // Perfect interleaving: both finish around 600us, the second slightly
        // after the first (slices alternate).
        let t1 = j1.try_take().unwrap();
        let t2 = j2.try_take().unwrap();
        assert_eq!(t1, us(500)); // slices at 0-100,200-300,400-500
        assert_eq!(t2, us(600)); // slices at 100-200,300-400,500-600
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let sim = Sim::new();
        let c = cpu(&sim, 2, ms(1));
        let h = sim.handle();
        let mut joins = Vec::new();
        for _ in 0..2 {
            let cc = c.clone();
            let hh = h.clone();
            joins.push(sim.spawn(async move {
                cc.execute(us(500)).await;
                hh.now()
            }));
        }
        sim.run();
        for j in joins {
            assert_eq!(j.try_take().unwrap(), us(500));
        }
    }

    #[test]
    fn short_job_behind_long_job_waits_about_one_quantum() {
        let sim = Sim::new();
        let c = cpu(&sim, 1, us(100));
        let h = sim.handle();
        let c1 = c.clone();
        sim.spawn(async move {
            c1.execute(ms(10)).await; // long background job
        });
        let c2 = c.clone();
        let h2 = h.clone();
        let j = sim.spawn(async move {
            h2.sleep(us(50)).await; // arrive mid-slice
            let start = h2.now();
            c2.execute(us(10)).await;
            h2.now() - start
        });
        sim.run();
        let waited = j.try_take().unwrap();
        // One quantum minus arrival offset, then our 10us of work.
        assert_eq!(waited, us(60));
    }

    #[test]
    fn run_queue_reflects_active_jobs_and_publishes_to_kstat() {
        let sim = Sim::new();
        let region = RegionData::new(crate::kstat::KSTAT_REGION_LEN);
        let c = CpuModel::new(
            sim.handle(),
            CpuConfig {
                cores: 1,
                quantum_ns: ms(1),
            },
            region.clone(),
        );
        for _ in 0..3 {
            let cc = c.clone();
            sim.spawn(async move { cc.execute(ms(2)).await });
        }
        sim.run_until(ms(1));
        assert_eq!(c.run_queue(), 3);
        // The registered region sees the same value without CPU involvement.
        let remote_view = KernelStats::decode(&region.read(0, crate::kstat::KSTAT_REGION_LEN));
        assert_eq!(remote_view.run_queue, 3);
        sim.run();
        assert_eq!(c.run_queue(), 0);
        assert_eq!(c.snapshot().busy_ns, ms(6));
    }

    #[test]
    fn thread_and_conn_counters_publish() {
        let sim = Sim::new();
        let region = RegionData::new(crate::kstat::KSTAT_REGION_LEN);
        let c = CpuModel::new(sim.handle(), CpuConfig::default(), region.clone());
        c.thread_started();
        c.thread_started();
        c.conn_opened();
        c.accept_enqueued();
        let v = KernelStats::decode(&region.read(0, crate::kstat::KSTAT_REGION_LEN));
        assert_eq!(v.app_threads, 2);
        assert_eq!(v.conns, 1);
        assert_eq!(v.accept_queue, 1);
        c.thread_exited();
        c.conn_closed();
        c.accept_dequeued();
        assert_eq!(c.snapshot().app_threads, 1);
        assert_eq!(c.snapshot().conns, 0);
        assert_eq!(c.snapshot().accept_queue, 0);
    }

    #[test]
    fn version_increases_with_every_update() {
        let sim = Sim::new();
        let c = cpu(&sim, 1, ms(1));
        let v0 = c.snapshot().version;
        c.thread_started();
        let v1 = c.snapshot().version;
        c.thread_exited();
        let v2 = c.snapshot().version;
        assert!(v0 < v1 && v1 < v2);
    }

    #[test]
    fn zero_work_is_free_and_immediate() {
        let sim = Sim::new();
        let c = cpu(&sim, 1, ms(1));
        let h = sim.handle();
        let t = sim.run_to(async move {
            c.execute(0).await;
            h.now()
        });
        assert_eq!(t, 0);
    }
}
