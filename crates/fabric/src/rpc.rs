//! Minimal request/response plumbing over send/recv.
//!
//! Control-plane daemons (backend fetch service, cache reserve service,
//! monitoring daemons) speak RPC: a request carries the caller's reply port
//! and a correlation id, the response echoes the id. One [`RpcClient`] per
//! calling entity multiplexes any number of concurrent calls over a single
//! bound port, so long experiments never exhaust the port space.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;

use crate::cluster::{Cluster, Message, NodeId, Transport};

const REQ_HDR: usize = 2 + 8; // reply port + correlation id
const RESP_HDR: usize = 8; // correlation id

/// Client side: issues calls and routes responses by correlation id.
#[derive(Clone)]
pub struct RpcClient {
    cluster: Cluster,
    node: NodeId,
    port: u16,
    pending: Rc<RefCell<HashMap<u64, dc_sim::sync::OneSender<Bytes>>>>,
    next_id: Rc<Cell<u64>>,
}

impl RpcClient {
    /// Create a client on `node` (binds one port and spawns the response
    /// pump).
    pub fn new(cluster: &Cluster, node: NodeId) -> RpcClient {
        let port = cluster.alloc_port_for(node, "rpc.client");
        let mut ep = cluster.bind(node, port);
        let pending: Rc<RefCell<HashMap<u64, dc_sim::sync::OneSender<Bytes>>>> = Rc::default();
        let pending2 = Rc::clone(&pending);
        let orphans = cluster.metrics().counter("rpc.orphan_responses");
        cluster.sim().spawn_detached(async move {
            loop {
                let msg = ep.recv().await;
                let id = u64::from_le_bytes(msg.data[..RESP_HDR].try_into().unwrap());
                if let Some(tx) = pending2.borrow_mut().remove(&id) {
                    tx.send(msg.data.slice(RESP_HDR..));
                } else {
                    // Response to a call that already timed out or whose
                    // future was dropped: its pending slot is gone, so the
                    // payload has no taker. Count it rather than losing the
                    // signal — a climbing orphan rate means callers' response
                    // deadlines are tighter than the servers they talk to.
                    orphans.inc();
                }
            }
        });
        RpcClient {
            cluster: cluster.clone(),
            node,
            port,
            pending,
            next_id: Rc::new(Cell::new(1)),
        }
    }

    /// The node this client calls from.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cluster this client sends through.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Call `(to, port)` with `payload`; resolves with the response payload.
    ///
    /// Infallible wrapper over [`RpcClient::try_call`]: retries the whole
    /// call a few times on timeout/unreachability and panics once the budget
    /// is exhausted. Callers that can degrade (e.g. fall back to a slower
    /// path) should use `try_call` directly.
    pub async fn call(&self, to: NodeId, port: u16, payload: &[u8], transport: Transport) -> Bytes {
        const CALL_ATTEMPTS: u32 = 4;
        for attempt in 0..CALL_ATTEMPTS {
            if let Some(resp) = self
                .try_call(to, port, payload, transport, DEFAULT_TIMEOUT_NS)
                .await
            {
                return resp;
            }
            let _ = attempt;
        }
        panic!("rpc call to {to:?}:{port} failed: retry budget exhausted");
    }

    /// Fallible call with a response deadline. The request travels over
    /// [`Cluster::send_reliable`], so transient drops are retransmitted;
    /// `None` means the request could not be delivered within the transport
    /// retry budget or no response arrived within `timeout_ns`.
    pub async fn try_call(
        &self,
        to: NodeId,
        port: u16,
        payload: &[u8],
        transport: Transport,
        timeout_ns: dc_sim::SimTime,
    ) -> Option<Bytes> {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        let (tx, rx) = dc_sim::sync::oneshot();
        self.pending.borrow_mut().insert(id, tx);
        // Guard, not manual removes: every exit path — send failure, response
        // timeout, *and this future being dropped mid-await* (a caller racing
        // the call against its own deadline) — evicts the pending slot, so the
        // map cannot grow without bound under sustained timeouts.
        let _guard = PendingGuard {
            pending: Rc::clone(&self.pending),
            id,
        };
        let mut req = Vec::with_capacity(REQ_HDR + payload.len());
        req.extend_from_slice(&self.port.to_le_bytes());
        req.extend_from_slice(&id.to_le_bytes());
        req.extend_from_slice(payload);
        if self
            .cluster
            .send_reliable(self.node, to, port, Bytes::from(req), transport)
            .await
            .is_err()
        {
            return None;
        }
        match self.cluster.sim().timeout(timeout_ns, rx).await {
            Ok(resp) => Some(resp.expect("rpc response channel closed")),
            // A late response arrives with an unknown id; the pump counts it
            // under `rpc.orphan_responses`.
            Err(_) => None,
        }
    }

    /// Calls currently awaiting a response (primarily for leak assertions).
    pub fn pending_calls(&self) -> usize {
        self.pending.borrow().len()
    }
}

/// Evicts a call's pending slot when the call completes or is abandoned.
struct PendingGuard {
    pending: Rc<RefCell<HashMap<u64, dc_sim::sync::OneSender<Bytes>>>>,
    id: u64,
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.pending.borrow_mut().remove(&self.id);
    }
}

/// Default response deadline for [`RpcClient::call`]: generous enough for
/// heavily queued backends, but bounded so a lost response can never hang a
/// caller forever.
pub const DEFAULT_TIMEOUT_NS: dc_sim::SimTime = 500_000_000;

/// A parsed incoming request, ready to be answered with [`respond`].
#[derive(Debug, Clone)]
pub struct RpcRequest {
    /// Caller node.
    pub src: NodeId,
    /// Caller's reply port.
    pub reply_port: u16,
    /// Correlation id to echo.
    pub id: u64,
    /// Request payload.
    pub payload: Bytes,
}

/// Parse a message received on a server port into an [`RpcRequest`].
pub fn parse_request(msg: &Message) -> RpcRequest {
    let reply_port = u16::from_le_bytes(msg.data[..2].try_into().unwrap());
    let id = u64::from_le_bytes(msg.data[2..10].try_into().unwrap());
    RpcRequest {
        src: msg.src,
        reply_port,
        id,
        payload: msg.data.slice(REQ_HDR..),
    }
}

/// Send `payload` back to the requester. Uses the reliable transport so a
/// transient drop cannot orphan the caller; if the requester stays down past
/// the retry budget the response is abandoned (the caller's own timeout
/// handles it).
pub async fn respond(
    cluster: &Cluster,
    server: NodeId,
    req: &RpcRequest,
    payload: &[u8],
    transport: Transport,
) {
    let mut resp = Vec::with_capacity(RESP_HDR + payload.len());
    resp.extend_from_slice(&req.id.to_le_bytes());
    resp.extend_from_slice(payload);
    let _ = cluster
        .send_reliable(
            server,
            req.src,
            req.reply_port,
            Bytes::from(resp),
            transport,
        )
        .await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FabricModel;
    use dc_sim::Sim;

    fn echo_server(cluster: &Cluster, node: NodeId) -> u16 {
        let port = cluster.alloc_port();
        let mut ep = cluster.bind(node, port);
        let cl = cluster.clone();
        cluster.sim().clone().spawn(async move {
            loop {
                let msg = ep.recv().await;
                let req = parse_request(&msg);
                let mut out = b"echo:".to_vec();
                out.extend_from_slice(&req.payload);
                respond(&cl, node, &req, &out, Transport::RdmaSend).await;
            }
        });
        port
    }

    #[test]
    fn call_round_trips() {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        let port = echo_server(&cluster, NodeId(1));
        let client = RpcClient::new(&cluster, NodeId(0));
        let resp = sim.run_to(async move {
            client
                .call(NodeId(1), port, b"hello", Transport::RdmaSend)
                .await
        });
        assert_eq!(&resp[..], b"echo:hello");
    }

    #[test]
    fn concurrent_calls_demultiplex_correctly() {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 3);
        let p1 = echo_server(&cluster, NodeId(1));
        let p2 = echo_server(&cluster, NodeId(2));
        let client = RpcClient::new(&cluster, NodeId(0));
        let mut joins = Vec::new();
        for i in 0..10u8 {
            let c = client.clone();
            let (to, port) = if i % 2 == 0 {
                (NodeId(1), p1)
            } else {
                (NodeId(2), p2)
            };
            joins.push(sim.spawn(async move {
                let resp = c.call(to, port, &[i], Transport::RdmaSend).await;
                (i, resp)
            }));
        }
        sim.run();
        for j in joins {
            let (i, resp) = j.try_take().unwrap();
            assert_eq!(&resp[..], &[b'e', b'c', b'h', b'o', b':', i]);
        }
    }

    #[test]
    fn calls_survive_heavy_message_drop() {
        use crate::faults::FaultPlan;
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        cluster.install_faults(FaultPlan::from_parts(11, vec![], vec![], vec![], 0.4));
        let port = echo_server(&cluster, NodeId(1));
        let client = RpcClient::new(&cluster, NodeId(0));
        let resps = sim.run_to(async move {
            let mut out = Vec::new();
            for i in 0..10u8 {
                out.push(
                    client
                        .call(NodeId(1), port, &[i], Transport::RdmaSend)
                        .await,
                );
            }
            out
        });
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(&r[..], &[b'e', b'c', b'h', b'o', b':', i as u8]);
        }
        assert!(cluster.fault_stats().dropped_msgs > 0);
    }

    #[test]
    fn try_call_times_out_on_unreachable_server() {
        use crate::faults::{CrashWindow, FaultPlan};
        use dc_sim::time::secs;
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        // Server down for the whole experiment: past any retry budget.
        cluster.install_faults(FaultPlan::from_parts(
            0,
            vec![CrashWindow {
                node: NodeId(1),
                start: 0,
                end: secs(3600),
            }],
            vec![],
            vec![],
            0.0,
        ));
        let port = echo_server(&cluster, NodeId(1));
        let client = RpcClient::new(&cluster, NodeId(0));
        let resp = sim.run_to(async move {
            client
                .try_call(NodeId(1), port, b"x", Transport::RdmaSend, 1_000_000)
                .await
        });
        assert_eq!(resp, None);
    }

    /// A server that answers every request after a fixed think time.
    fn slow_echo_server(cluster: &Cluster, node: NodeId, delay_ns: u64) -> u16 {
        let port = cluster.alloc_port();
        let mut ep = cluster.bind(node, port);
        let cl = cluster.clone();
        cluster.sim().clone().spawn(async move {
            loop {
                let msg = ep.recv().await;
                let req = parse_request(&msg);
                cl.sim().sleep(delay_ns).await;
                let payload = req.payload.clone();
                respond(&cl, node, &req, &payload[..], Transport::RdmaSend).await;
            }
        });
        port
    }

    #[test]
    fn late_response_counts_as_orphan_and_evicts_slot() {
        use dc_sim::time::ms;
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        // Server answers after 5 ms; caller gives up after 1 ms.
        let port = slow_echo_server(&cluster, NodeId(1), ms(5));
        let client = RpcClient::new(&cluster, NodeId(0));
        let c2 = client.clone();
        let pending_after_timeout = sim.run_to(async move {
            let resp = c2
                .try_call(NodeId(1), port, b"x", Transport::RdmaSend, ms(1))
                .await;
            assert_eq!(resp, None);
            c2.pending_calls()
        });
        assert_eq!(
            pending_after_timeout, 0,
            "timed-out call must evict its slot"
        );
        // Let the late response land: it must be counted, not silently lost.
        sim.run();
        assert_eq!(cluster.metrics().counter("rpc.orphan_responses").get(), 1);
        assert_eq!(client.pending_calls(), 0);
    }

    #[test]
    fn abandoned_call_future_evicts_pending_slot() {
        use dc_sim::time::ms;
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        let port = slow_echo_server(&cluster, NodeId(1), ms(50));
        let client = RpcClient::new(&cluster, NodeId(0));
        let c2 = client.clone();
        let h = sim.handle();
        let pending = sim.run_to(async move {
            // Abandon the call long before its own generous deadline: the
            // dropped future must still clean up its pending entry.
            let call = c2.try_call(NodeId(1), port, b"x", Transport::RdmaSend, ms(500));
            let _ = h.timeout(ms(1), call).await;
            c2.pending_calls()
        });
        assert_eq!(pending, 0, "dropped call future leaked a pending slot");
        sim.run();
        assert_eq!(cluster.metrics().counter("rpc.orphan_responses").get(), 1);
    }

    #[test]
    fn tcp_transport_works_for_rpc() {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        let port = echo_server(&cluster, NodeId(1));
        let client = RpcClient::new(&cluster, NodeId(0));
        let resp =
            sim.run_to(async move { client.call(NodeId(1), port, b"x", Transport::Tcp).await });
        assert_eq!(&resp[..], b"echo:x");
    }
}
