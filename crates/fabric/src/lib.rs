//! # dc-fabric — simulated RDMA-capable system-area network
//!
//! This crate stands in for the InfiniBand cluster the paper evaluated on.
//! It models a cluster of nodes connected by a SAN whose NICs support the
//! hardware features the paper's designs rely on:
//!
//! * **One-sided verbs** — [`Cluster::rdma_read`] / [`Cluster::rdma_write`]
//!   against registered memory regions, completing *without any involvement
//!   of the target node's CPU*.
//! * **Remote atomic operations** — [`Cluster::atomic_cas`]
//!   (compare-and-swap) and [`Cluster::atomic_faa`] (fetch-and-add) on
//!   64-bit words of registered memory, linearized at the target NIC.
//! * **Two-sided send/recv** — [`Cluster::send`] to a bound [`Endpoint`],
//!   either as an RDMA send (NIC-delivered) or as host TCP, which charges
//!   protocol-processing time on *both* CPUs and is therefore delayed when
//!   the target node is loaded.
//!
//! Each node carries a [`cpu::CpuModel`] — a round-robin scheduler over a
//! configurable number of cores with a preemption quantum — and a kernel
//! statistics block ([`kstat::KernelStats`]) that the scheduler keeps
//! up to date inside a registered memory region, exactly like the paper's
//! registered kernel data structures: a front-end node can `rdma_read` the
//! current run-queue length without scheduling anything on the target.
//!
//! Latency and bandwidth constants live in [`model::FabricModel`] and are
//! calibrated to the paper's 2007-era testbed (see
//! [`model::FabricModel::calibrated_2007`]); an Ethernet-flavoured profile
//! ([`model::FabricModel::tcp_cluster_2007`]) is provided for baseline
//! comparisons.
//!
//! ```
//! use dc_sim::Sim;
//! use dc_fabric::{Cluster, FabricModel, NodeId, RemoteAddr};
//!
//! let sim = Sim::new();
//! let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
//! let region = cluster.register(NodeId(1), 4096);
//! let addr = RemoteAddr { node: NodeId(1), region, offset: 0 };
//!
//! let c = cluster.clone();
//! let data = sim.run_to(async move {
//!     c.rdma_write(NodeId(0), addr, b"hello").await;
//!     c.rdma_read(NodeId(0), addr, 5).await
//! });
//! assert_eq!(&data[..], b"hello");
//! ```

pub mod cluster;
pub mod cpu;
pub mod faults;
pub mod kstat;
pub mod mem;
pub mod model;
pub mod rpc;

pub use cluster::{Cluster, Endpoint, Message, NodeId, Transport, VerbStats};
pub use cpu::{CpuConfig, CpuModel};
pub use faults::{FabricError, FaultConfig, FaultPlan, FaultStats, RetryPolicy};
pub use kstat::KernelStats;
pub use mem::{RegionId, RemoteAddr};
pub use model::FabricModel;
pub use rpc::RpcClient;
