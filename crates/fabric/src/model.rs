//! Fabric cost model: latency, bandwidth, and CPU-involvement constants.
//!
//! The constants are calibrated to the paper's testbed era (InfiniBand 4x on
//! a 2007 OSU cluster): one-sided RDMA write ≈ 6 µs, RDMA read ≈ 12 µs,
//! remote atomics ≈ 12–13 µs round trip, host-based TCP/IP 1-byte latency
//! ≈ 50 µs with per-byte copy costs on both CPUs. Calibration notes per
//! experiment are in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

use crate::cpu::CpuConfig;

/// Cost model for the simulated fabric and node CPUs.
///
/// All latencies are nanoseconds, bandwidths are bytes per microsecond
/// (1 byte/µs = 1 MB/s).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricModel {
    /// Round-trip completion latency of a minimal RDMA read.
    pub rdma_read_base_ns: u64,
    /// Completion latency of a minimal RDMA write (posting to remote ack).
    pub rdma_write_base_ns: u64,
    /// Round-trip latency of a remote atomic (CAS / fetch-and-add).
    pub atomic_base_ns: u64,
    /// Latency of a minimal RDMA send (two-sided, NIC-delivered).
    pub rdma_send_base_ns: u64,
    /// Sender-side software overhead of posting any verb (descriptor prep).
    pub post_overhead_ns: u64,
    /// SAN payload bandwidth, bytes per microsecond (≈ MB/s).
    pub ib_bytes_per_us: u64,

    /// One-way base latency of the host TCP/IP path (stack + interrupt).
    pub tcp_base_ns: u64,
    /// TCP payload bandwidth, bytes per microsecond.
    pub tcp_bytes_per_us: u64,
    /// CPU time charged to the *sender* per TCP message (syscall + copy).
    pub tcp_send_cpu_base_ns: u64,
    /// Additional sender CPU per KiB of payload (buffer copy).
    pub tcp_send_cpu_per_kb_ns: u64,
    /// CPU time charged to the *receiver* per TCP message before delivery.
    pub tcp_recv_cpu_base_ns: u64,
    /// Additional receiver CPU per KiB of payload.
    pub tcp_recv_cpu_per_kb_ns: u64,

    /// Per-node CPU scheduling parameters.
    pub cpu: CpuConfig,
}

impl FabricModel {
    /// Constants calibrated to the paper's 2007 InfiniBand 4x testbed.
    pub fn calibrated_2007() -> Self {
        FabricModel {
            rdma_read_base_ns: 12_000,
            rdma_write_base_ns: 6_000,
            atomic_base_ns: 12_500,
            rdma_send_base_ns: 7_000,
            post_overhead_ns: 500,
            ib_bytes_per_us: 900, // ≈ 900 MB/s IB 4x payload rate
            tcp_base_ns: 22_000,  // ≈ 50 µs end-to-end 1-byte with CPU costs
            tcp_bytes_per_us: 450,
            tcp_send_cpu_base_ns: 3_000,
            tcp_send_cpu_per_kb_ns: 1_800,
            tcp_recv_cpu_base_ns: 3_000,
            tcp_recv_cpu_per_kb_ns: 1_800,
            cpu: CpuConfig::default(),
        }
    }

    /// An Ethernet-flavoured cluster without usable RDMA: one-sided verbs
    /// are still *possible* to call but carry TCP-class latencies. Used for
    /// "traditional implementation" baselines.
    pub fn tcp_cluster_2007() -> Self {
        let mut m = Self::calibrated_2007();
        m.rdma_read_base_ns = 2 * m.tcp_base_ns + 10_000;
        m.rdma_write_base_ns = 2 * m.tcp_base_ns + 10_000;
        m.atomic_base_ns = 2 * m.tcp_base_ns + 10_000;
        m.rdma_send_base_ns = m.tcp_base_ns;
        m.ib_bytes_per_us = m.tcp_bytes_per_us;
        m
    }

    /// A stable digest of every calibration constant in this model,
    /// formatted `fm1-<16 hex digits>`.
    ///
    /// Bench reports embed it (`dc-bench-report/v2` `fingerprint`), and the
    /// `dc-regress` differ refuses to compare reports produced under
    /// different fingerprints: a calibration change invalidates committed
    /// baselines *loudly* instead of showing up as a wall of numeric
    /// deltas. Changing any field — including the CPU parameters — changes
    /// the digest; the `fm1` prefix versions the digest scheme itself.
    pub fn fingerprint(&self) -> String {
        // FNV-1a, 64-bit. Field order is fixed and append-only.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.rdma_read_base_ns);
        mix(self.rdma_write_base_ns);
        mix(self.atomic_base_ns);
        mix(self.rdma_send_base_ns);
        mix(self.post_overhead_ns);
        mix(self.ib_bytes_per_us);
        mix(self.tcp_base_ns);
        mix(self.tcp_bytes_per_us);
        mix(self.tcp_send_cpu_base_ns);
        mix(self.tcp_send_cpu_per_kb_ns);
        mix(self.tcp_recv_cpu_base_ns);
        mix(self.tcp_recv_cpu_per_kb_ns);
        mix(self.cpu.cores as u64);
        mix(self.cpu.quantum_ns);
        // Derived lookahead bound: folding it in means any future change
        // to how the bound is computed — not just to the base constants —
        // re-fingerprints the model, so sharded and single-threaded
        // baselines can never be diffed across differing lookahead rules.
        mix(self.min_link_latency_ns());
        format!("fm1-{h:016x}")
    }

    /// The minimum one-way virtual latency any fabric message can have:
    /// the floor over every base (per-message) latency constant. This is
    /// the conservative-lookahead bound for the sharded sim driver
    /// (`dc_sim::shard`) — no cross-node send can arrive sooner than this,
    /// so shards may safely advance in windows of this width. Scenarios
    /// whose message set has a higher floor (e.g. every hop also pays a
    /// transfer or CPU cost) may widen the window, never narrow it below
    /// their own minimum delay.
    #[inline]
    pub fn min_link_latency_ns(&self) -> u64 {
        self.rdma_read_base_ns
            .min(self.rdma_write_base_ns)
            .min(self.atomic_base_ns)
            .min(self.rdma_send_base_ns)
            .min(self.tcp_base_ns)
    }

    /// Time to move `len` payload bytes across the SAN at IB bandwidth.
    #[inline]
    pub fn ib_bytes_time(&self, len: usize) -> u64 {
        bytes_time(len, self.ib_bytes_per_us)
    }

    /// Time to move `len` payload bytes across the TCP path.
    #[inline]
    pub fn tcp_bytes_time(&self, len: usize) -> u64 {
        bytes_time(len, self.tcp_bytes_per_us)
    }

    /// Sender-side CPU work for a TCP message of `len` bytes.
    #[inline]
    pub fn tcp_send_cpu(&self, len: usize) -> u64 {
        self.tcp_send_cpu_base_ns + per_kb(len, self.tcp_send_cpu_per_kb_ns)
    }

    /// Receiver-side CPU work for a TCP message of `len` bytes.
    #[inline]
    pub fn tcp_recv_cpu(&self, len: usize) -> u64 {
        self.tcp_recv_cpu_base_ns + per_kb(len, self.tcp_recv_cpu_per_kb_ns)
    }
}

impl Default for FabricModel {
    fn default() -> Self {
        Self::calibrated_2007()
    }
}

/// `len` bytes at `bytes_per_us` bandwidth, in nanoseconds (rounded up).
#[inline]
pub fn bytes_time(len: usize, bytes_per_us: u64) -> u64 {
    if bytes_per_us == 0 {
        return 0;
    }
    ((len as u64) * 1_000).div_ceil(bytes_per_us)
}

#[inline]
fn per_kb(len: usize, per_kb_ns: u64) -> u64 {
    ((len as u64) * per_kb_ns).div_ceil(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_time_matches_bandwidth() {
        // 900 bytes/us: 9000 bytes take 10us.
        assert_eq!(bytes_time(9_000, 900), 10_000);
        // Rounds up: 1 byte still takes ceil(1000/900) = 2ns.
        assert_eq!(bytes_time(1, 900), 2);
        assert_eq!(bytes_time(0, 900), 0);
        assert_eq!(bytes_time(123, 0), 0);
    }

    #[test]
    fn calibration_orders_hold() {
        let m = FabricModel::calibrated_2007();
        // One-sided write is the cheapest verb; atomics cost a round trip.
        assert!(m.rdma_write_base_ns < m.rdma_read_base_ns);
        assert!(m.rdma_write_base_ns < m.atomic_base_ns);
        // End-to-end 1-byte TCP (base + both CPU sides) is several times
        // slower than an RDMA write.
        let tcp_one_byte = m.tcp_base_ns + m.tcp_send_cpu(1) + m.tcp_recv_cpu(1);
        assert!(tcp_one_byte > 4 * m.rdma_write_base_ns);
        // IB moves bytes at least twice as fast as the TCP path.
        assert!(m.ib_bytes_per_us >= 2 * m.tcp_bytes_per_us);
    }

    #[test]
    fn tcp_cpu_costs_scale_with_size() {
        let m = FabricModel::calibrated_2007();
        assert_eq!(m.tcp_send_cpu(0), m.tcp_send_cpu_base_ns);
        assert_eq!(
            m.tcp_send_cpu(2048),
            m.tcp_send_cpu_base_ns + 2 * m.tcp_send_cpu_per_kb_ns
        );
        assert!(m.tcp_recv_cpu(65536) > m.tcp_recv_cpu(1024));
    }

    #[test]
    fn tcp_cluster_profile_removes_rdma_advantage() {
        let m = FabricModel::tcp_cluster_2007();
        assert!(m.rdma_read_base_ns > FabricModel::calibrated_2007().rdma_read_base_ns);
        assert_eq!(m.ib_bytes_per_us, m.tcp_bytes_per_us);
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive_to_every_constant() {
        let base = FabricModel::calibrated_2007();
        assert_eq!(base.fingerprint(), base.fingerprint(), "must be pure");
        assert!(base.fingerprint().starts_with("fm1-"));
        assert_eq!(base.fingerprint().len(), 4 + 16);
        assert_ne!(
            base.fingerprint(),
            FabricModel::tcp_cluster_2007().fingerprint()
        );
        // Perturbing any single constant must change the digest.
        let perturbations: Vec<FabricModel> = vec![
            FabricModel {
                rdma_read_base_ns: base.rdma_read_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                rdma_write_base_ns: base.rdma_write_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                atomic_base_ns: base.atomic_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                rdma_send_base_ns: base.rdma_send_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                post_overhead_ns: base.post_overhead_ns + 1,
                ..base.clone()
            },
            FabricModel {
                ib_bytes_per_us: base.ib_bytes_per_us + 1,
                ..base.clone()
            },
            FabricModel {
                tcp_base_ns: base.tcp_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                tcp_bytes_per_us: base.tcp_bytes_per_us + 1,
                ..base.clone()
            },
            FabricModel {
                tcp_send_cpu_base_ns: base.tcp_send_cpu_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                tcp_send_cpu_per_kb_ns: base.tcp_send_cpu_per_kb_ns + 1,
                ..base.clone()
            },
            FabricModel {
                tcp_recv_cpu_base_ns: base.tcp_recv_cpu_base_ns + 1,
                ..base.clone()
            },
            FabricModel {
                tcp_recv_cpu_per_kb_ns: base.tcp_recv_cpu_per_kb_ns + 1,
                ..base.clone()
            },
            FabricModel {
                cpu: CpuConfig {
                    cores: base.cpu.cores + 1,
                    ..base.cpu
                },
                ..base.clone()
            },
            FabricModel {
                cpu: CpuConfig {
                    quantum_ns: base.cpu.quantum_ns + 1,
                    ..base.cpu
                },
                ..base.clone()
            },
        ];
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.fingerprint());
        for (i, m) in perturbations.iter().enumerate() {
            assert!(
                seen.insert(m.fingerprint()),
                "perturbation {i} collided with an earlier fingerprint"
            );
        }
    }

    #[test]
    fn min_link_latency_is_the_floor_of_every_base_latency() {
        let m = FabricModel::calibrated_2007();
        // The cheapest per-message primitive in the 2007 calibration is
        // the one-sided RDMA write.
        assert_eq!(m.min_link_latency_ns(), m.rdma_write_base_ns);
        for v in [
            m.rdma_read_base_ns,
            m.rdma_write_base_ns,
            m.atomic_base_ns,
            m.rdma_send_base_ns,
            m.tcp_base_ns,
        ] {
            assert!(m.min_link_latency_ns() <= v);
        }
        assert!(m.min_link_latency_ns() > 0, "lookahead must be positive");
        // The TCP-cluster profile has a different floor, and the
        // fingerprint already separates the two profiles.
        let t = FabricModel::tcp_cluster_2007();
        assert_eq!(
            t.min_link_latency_ns(),
            t.rdma_send_base_ns.min(t.tcp_base_ns)
        );
    }

    #[test]
    fn profiles_are_cloneable_and_comparable() {
        let a = FabricModel::calibrated_2007();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, FabricModel::tcp_cluster_2007());
    }
}
