//! The cluster: nodes, registered regions, verbs, and send/recv transport.
//!
//! Timing composition (constants from [`FabricModel`], documented per verb):
//!
//! * `rdma_read(len)` — post overhead, half the base round trip for the
//!   request to reach the target NIC, queueing on the target's outbound link
//!   for `len` bytes of transmission (the data is sampled when transmission
//!   begins), then half the base back. Total ≈ `post + read_base + bytes`.
//! * `rdma_write(len)` — post overhead, queueing on the issuer's outbound
//!   link for `len` bytes, half the base for the data to land (the bytes
//!   become visible at the target then), half the base for the NIC-level
//!   ack. Total ≈ `post + bytes + write_base`.
//! * `atomic_cas` / `atomic_faa` — post overhead, half the base each way;
//!   the operation is linearized at the target NIC at the halfway instant.
//! * `send(RdmaSend)` — like a write into the target's receive queue: no
//!   target CPU participation; the message appears in the bound endpoint's
//!   mailbox.
//! * `send(Tcp)` — charges `tcp_send_cpu(len)` on the *sender's* CPU and
//!   `tcp_recv_cpu(len)` on the *target's* CPU (where it competes round-robin
//!   with application load) before the message is delivered.
//!
//! Outbound-link queueing models the single resource that matters for the
//! cooperative-caching experiments: a popular cache holder serving many
//! remote fetches serializes them on its transmit link.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use dc_sim::sync::{channel, Receiver, Semaphore, Sender};
use dc_sim::SimHandle;

use crate::kstat::KSTAT_REGION_LEN;
use crate::mem::{RegionData, RegionId, RemoteAddr};
use crate::model::FabricModel;

/// Identifier of a node in the cluster (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Which transport a two-sided message uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// NIC-delivered send: no target CPU participation before delivery.
    RdmaSend,
    /// Host TCP/IP: protocol processing charged to both CPUs.
    Tcp,
}

/// A delivered two-sided message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Port the sender addressed (the receiver's bound port).
    pub port: u16,
    /// Payload.
    pub data: Bytes,
}

/// Per-cluster verb counters, for ablations and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerbStats {
    /// Completed RDMA reads.
    pub reads: u64,
    /// Completed RDMA writes.
    pub writes: u64,
    /// Completed compare-and-swap atomics.
    pub cas: u64,
    /// Completed fetch-and-add atomics.
    pub faa: u64,
    /// RDMA sends delivered.
    pub sends_rdma: u64,
    /// TCP messages delivered.
    pub sends_tcp: u64,
    /// Payload bytes moved by reads.
    pub bytes_read: u64,
    /// Payload bytes moved by writes.
    pub bytes_written: u64,
}

struct NodeInner {
    regions: RefCell<Vec<RegionData>>,
    cpu: crate::cpu::CpuModel,
    ports: RefCell<HashMap<u16, Sender<Message>>>,
    /// Outbound link: serializes payload transmission from this node.
    link: Semaphore,
}

struct ClusterInner {
    sim: SimHandle,
    model: FabricModel,
    nodes: RefCell<Vec<Rc<NodeInner>>>,
    stats: StatsCells,
    next_port: Cell<u16>,
}

#[derive(Default)]
struct StatsCells {
    reads: Cell<u64>,
    writes: Cell<u64>,
    cas: Cell<u64>,
    faa: Cell<u64>,
    sends_rdma: Cell<u64>,
    sends_tcp: Cell<u64>,
    bytes_read: Cell<u64>,
    bytes_written: Cell<u64>,
}

/// Handle to the simulated cluster; clone freely.
#[derive(Clone)]
pub struct Cluster {
    inner: Rc<ClusterInner>,
}

impl Cluster {
    /// Build a cluster of `nodes` nodes under the given cost model. Each
    /// node's region 0 is its kernel-statistics block.
    pub fn new(sim: SimHandle, model: FabricModel, nodes: usize) -> Cluster {
        let cluster = Cluster {
            inner: Rc::new(ClusterInner {
                sim,
                model,
                nodes: RefCell::new(Vec::new()),
                stats: StatsCells::default(),
                next_port: Cell::new(1024),
            }),
        };
        for _ in 0..nodes {
            cluster.add_node();
        }
        cluster
    }

    /// Add one node; returns its id.
    pub fn add_node(&self) -> NodeId {
        let kstat = RegionData::new(KSTAT_REGION_LEN);
        let cpu = crate::cpu::CpuModel::new(
            self.inner.sim.clone(),
            self.inner.model.cpu,
            kstat.clone(),
        );
        let node = Rc::new(NodeInner {
            regions: RefCell::new(vec![kstat]),
            cpu,
            ports: RefCell::new(HashMap::new()),
            link: Semaphore::new(1),
        });
        let mut nodes = self.inner.nodes.borrow_mut();
        nodes.push(node);
        NodeId((nodes.len() - 1) as u32)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The simulation handle driving this cluster.
    pub fn sim(&self) -> &SimHandle {
        &self.inner.sim
    }

    /// The cost model in force.
    pub fn model(&self) -> &FabricModel {
        &self.inner.model
    }

    /// Verb counters so far.
    pub fn stats(&self) -> VerbStats {
        let s = &self.inner.stats;
        VerbStats {
            reads: s.reads.get(),
            writes: s.writes.get(),
            cas: s.cas.get(),
            faa: s.faa.get(),
            sends_rdma: s.sends_rdma.get(),
            sends_tcp: s.sends_tcp.get(),
            bytes_read: s.bytes_read.get(),
            bytes_written: s.bytes_written.get(),
        }
    }

    fn node(&self, id: NodeId) -> Rc<NodeInner> {
        Rc::clone(
            self.inner
                .nodes
                .borrow()
                .get(id.idx())
                .unwrap_or_else(|| panic!("no such node: {id:?}")),
        )
    }

    /// The CPU model of `node` (for running application work / load).
    pub fn cpu(&self, node: NodeId) -> crate::cpu::CpuModel {
        self.node(node).cpu.clone()
    }

    /// Register a zeroed memory region of `len` bytes on `node`.
    pub fn register(&self, node: NodeId, len: usize) -> RegionId {
        let n = self.node(node);
        let mut regions = n.regions.borrow_mut();
        regions.push(RegionData::new(len));
        RegionId((regions.len() - 1) as u32)
    }

    /// Node-local access to a registered region (no fabric cost — this is
    /// the owning application touching its own memory).
    pub fn region(&self, node: NodeId, region: RegionId) -> RegionData {
        self.node(node)
            .regions
            .borrow()
            .get(region.0 as usize)
            .unwrap_or_else(|| panic!("no such region {region:?} on {node:?}"))
            .clone()
    }

    /// Remote address of `node`'s kernel-statistics block.
    pub fn kstat_addr(&self, node: NodeId) -> RemoteAddr {
        RemoteAddr {
            node,
            region: RegionId(0),
            offset: 0,
        }
    }

    /// One-sided RDMA read of `len` bytes at `addr`, issued by `from`.
    /// The target CPU is not involved.
    pub async fn rdma_read(&self, from: NodeId, addr: RemoteAddr, len: usize) -> Bytes {
        let _ = from;
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        sim.sleep(m.post_overhead_ns + m.rdma_read_base_ns / 2).await;
        let target = self.node(addr.node);
        // Queue on the target's outbound link for the payload.
        let permit = target.link.acquire_permit().await;
        let region = target.regions.borrow()[addr.region.0 as usize].clone();
        let data = Bytes::from(region.read(addr.offset, len));
        sim.sleep(m.ib_bytes_time(len)).await;
        drop(permit);
        sim.sleep(m.rdma_read_base_ns - m.rdma_read_base_ns / 2).await;
        self.inner.stats.reads.set(self.inner.stats.reads.get() + 1);
        self.inner
            .stats
            .bytes_read
            .set(self.inner.stats.bytes_read.get() + len as u64);
        data
    }

    /// One-sided RDMA write of `data` to `addr`, issued by `from`.
    /// Completes after the NIC-level acknowledgement.
    pub async fn rdma_write(&self, from: NodeId, addr: RemoteAddr, data: &[u8]) {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        sim.sleep(m.post_overhead_ns).await;
        let src = self.node(from);
        let permit = src.link.acquire_permit().await;
        sim.sleep(m.ib_bytes_time(data.len())).await;
        drop(permit);
        sim.sleep(m.rdma_write_base_ns / 2).await;
        let target = self.node(addr.node);
        let region = target.regions.borrow()[addr.region.0 as usize].clone();
        region.write(addr.offset, data);
        sim.sleep(m.rdma_write_base_ns - m.rdma_write_base_ns / 2)
            .await;
        self.inner
            .stats
            .writes
            .set(self.inner.stats.writes.get() + 1);
        self.inner
            .stats
            .bytes_written
            .set(self.inner.stats.bytes_written.get() + data.len() as u64);
    }

    /// Remote compare-and-swap on the u64 at `addr`; returns the prior value
    /// (swap happened iff it equals `expect`). Linearized at the target NIC.
    pub async fn atomic_cas(&self, from: NodeId, addr: RemoteAddr, expect: u64, swap: u64) -> u64 {
        let _ = from;
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        sim.sleep(m.post_overhead_ns + m.atomic_base_ns / 2).await;
        let target = self.node(addr.node);
        let region = target.regions.borrow()[addr.region.0 as usize].clone();
        let old = region.cas_u64(addr.offset, expect, swap);
        sim.sleep(m.atomic_base_ns - m.atomic_base_ns / 2).await;
        self.inner.stats.cas.set(self.inner.stats.cas.get() + 1);
        old
    }

    /// Remote fetch-and-add (wrapping) on the u64 at `addr`; returns the
    /// prior value. Linearized at the target NIC.
    pub async fn atomic_faa(&self, from: NodeId, addr: RemoteAddr, add: u64) -> u64 {
        let _ = from;
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        sim.sleep(m.post_overhead_ns + m.atomic_base_ns / 2).await;
        let target = self.node(addr.node);
        let region = target.regions.borrow()[addr.region.0 as usize].clone();
        let old = region.faa_u64(addr.offset, add);
        sim.sleep(m.atomic_base_ns - m.atomic_base_ns / 2).await;
        self.inner.stats.faa.set(self.inner.stats.faa.get() + 1);
        old
    }

    /// Allocate a cluster-unique port number (usable on any node). Ports
    /// below 1024 are reserved for well-known services.
    pub fn alloc_port(&self) -> u16 {
        let p = self.inner.next_port.get();
        assert!(p < u16::MAX, "port space exhausted");
        self.inner.next_port.set(p + 1);
        p
    }

    /// Bind a receive endpoint on `(node, port)`. Panics if the port is
    /// already bound.
    pub fn bind(&self, node: NodeId, port: u16) -> Endpoint {
        let (tx, rx) = channel();
        let n = self.node(node);
        let prev = n.ports.borrow_mut().insert(port, tx);
        assert!(prev.is_none(), "port {port} already bound on {node:?}");
        Endpoint {
            node: Rc::downgrade(&n),
            id: node,
            port,
            rx,
        }
    }

    /// Send `data` from `from` to `(to, port)` over `transport`. Completes
    /// when the message is delivered into the endpoint's mailbox (for TCP
    /// that includes receiver-side protocol processing, which competes with
    /// application load for the target CPU). Messages to unbound ports are
    /// silently dropped, like a network.
    pub async fn send(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: Bytes,
        transport: Transport,
    ) {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        let len = data.len();
        match transport {
            Transport::RdmaSend => {
                sim.sleep(m.post_overhead_ns).await;
                let src = self.node(from);
                let permit = src.link.acquire_permit().await;
                sim.sleep(m.ib_bytes_time(len)).await;
                drop(permit);
                sim.sleep(m.rdma_send_base_ns).await;
                self.deliver(from, to, port, data);
                self.inner
                    .stats
                    .sends_rdma
                    .set(self.inner.stats.sends_rdma.get() + 1);
            }
            Transport::Tcp => {
                // Sender-side stack processing (copy into kernel buffers).
                let src = self.node(from);
                src.cpu.execute(m.tcp_send_cpu(len)).await;
                let permit = src.link.acquire_permit().await;
                sim.sleep(m.tcp_bytes_time(len)).await;
                drop(permit);
                sim.sleep(m.tcp_base_ns).await;
                // Receiver-side stack processing competes with load.
                let dst = self.node(to);
                dst.cpu.execute(m.tcp_recv_cpu(len)).await;
                self.deliver(from, to, port, data);
                self.inner
                    .stats
                    .sends_tcp
                    .set(self.inner.stats.sends_tcp.get() + 1);
            }
        }
    }

    fn deliver(&self, from: NodeId, to: NodeId, port: u16, data: Bytes) {
        let n = self.node(to);
        let ports = n.ports.borrow();
        if let Some(tx) = ports.get(&port) {
            // A dead receiver (dropped endpoint) behaves like an unbound
            // port: the message is dropped.
            let _ = tx.send(Message {
                src: from,
                port,
                data,
            });
        }
    }
}

/// A bound receive endpoint; unbinds its port on drop.
pub struct Endpoint {
    node: std::rc::Weak<NodeInner>,
    id: NodeId,
    port: u16,
    rx: Receiver<Message>,
}

impl Endpoint {
    /// The node this endpoint lives on.
    pub fn node(&self) -> NodeId {
        self.id
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Await the next message.
    pub async fn recv(&mut self) -> Message {
        self.rx
            .recv()
            .await
            .expect("endpoint channel closed while bound")
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Message> {
        self.rx.try_recv()
    }

    /// Messages currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        if let Some(n) = self.node.upgrade() {
            n.ports.borrow_mut().remove(&self.port);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::time::{ms, us};
    use dc_sim::Sim;

    fn setup(n: usize) -> (Sim, Cluster) {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), n);
        (sim, cluster)
    }

    #[test]
    fn rdma_write_then_read_round_trips_data() {
        let (sim, c) = setup(3);
        let r = c.register(NodeId(2), 1024);
        let addr = RemoteAddr {
            node: NodeId(2),
            region: r,
            offset: 100,
        };
        let cc = c.clone();
        let out = sim.run_to(async move {
            cc.rdma_write(NodeId(0), addr, b"payload").await;
            cc.rdma_read(NodeId(1), addr, 7).await
        });
        assert_eq!(&out[..], b"payload");
        let s = c.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.bytes_read, 7);
    }

    #[test]
    fn small_read_latency_matches_calibration() {
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        let cc = c.clone();
        let h = sim.handle();
        let t = sim.run_to(async move {
            cc.rdma_read(NodeId(0), addr, 1).await;
            h.now()
        });
        let m = FabricModel::calibrated_2007();
        // post + base + 1-byte wire time (2ns at 900 B/us).
        assert_eq!(t, m.post_overhead_ns + m.rdma_read_base_ns + 2);
    }

    #[test]
    fn rdma_ops_do_not_touch_target_cpu() {
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        let cc = c.clone();
        sim.run_to(async move {
            cc.rdma_write(NodeId(0), addr, &[1; 32]).await;
            cc.rdma_read(NodeId(0), addr, 32).await;
            cc.atomic_faa(NodeId(0), addr, 1).await;
        });
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, 0);
    }

    #[test]
    fn atomics_linearize_under_concurrency() {
        let (sim, c) = setup(5);
        let r = c.register(NodeId(0), 8);
        let addr = RemoteAddr {
            node: NodeId(0),
            region: r,
            offset: 0,
        };
        // Four nodes concurrently increment 100 times each.
        for n in 1..5u32 {
            let cc = c.clone();
            sim.spawn(async move {
                for _ in 0..100 {
                    cc.atomic_faa(NodeId(n), addr, 1).await;
                }
            });
        }
        sim.run();
        assert_eq!(c.region(NodeId(0), r).read_u64(0), 400);
    }

    #[test]
    fn cas_exactly_one_winner() {
        let (sim, c) = setup(4);
        let r = c.register(NodeId(0), 8);
        let addr = RemoteAddr {
            node: NodeId(0),
            region: r,
            offset: 0,
        };
        let mut joins = Vec::new();
        for n in 1..4u32 {
            let cc = c.clone();
            joins.push(sim.spawn(async move {
                cc.atomic_cas(NodeId(n), addr, 0, n as u64).await == 0
            }));
        }
        sim.run();
        let winners: usize = joins.iter().filter(|j| j.try_take() == Some(true)).count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn rdma_send_delivers_without_target_cpu() {
        let (sim, c) = setup(2);
        let mut ep = c.bind(NodeId(1), 7);
        let cc = c.clone();
        sim.spawn(async move {
            cc.send(
                NodeId(0),
                NodeId(1),
                7,
                Bytes::from_static(b"ping"),
                Transport::RdmaSend,
            )
            .await;
        });
        let msg = sim.run_to(async move { ep.recv().await });
        assert_eq!(&msg.data[..], b"ping");
        assert_eq!(msg.src, NodeId(0));
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, 0);
        assert_eq!(c.stats().sends_rdma, 1);
    }

    #[test]
    fn tcp_send_charges_both_cpus() {
        let (sim, c) = setup(2);
        let mut ep = c.bind(NodeId(1), 7);
        let cc = c.clone();
        sim.spawn(async move {
            cc.send(
                NodeId(0),
                NodeId(1),
                7,
                Bytes::from(vec![0u8; 2048]),
                Transport::Tcp,
            )
            .await;
        });
        sim.run_to(async move { ep.recv().await });
        let m = FabricModel::calibrated_2007();
        assert_eq!(c.cpu(NodeId(0)).snapshot().busy_ns, m.tcp_send_cpu(2048));
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, m.tcp_recv_cpu(2048));
    }

    #[test]
    fn tcp_delivery_is_delayed_by_target_load() {
        // Measure unloaded vs loaded delivery time of identical messages.
        let deliver_time = |loaded: bool| -> u64 {
            let (sim, c) = setup(2);
            if loaded {
                for _ in 0..4 {
                    let cpu = c.cpu(NodeId(1));
                    sim.spawn(async move { cpu.execute(ms(50)).await });
                }
            }
            let mut ep = c.bind(NodeId(1), 7);
            let cc = c.clone();
            sim.spawn(async move {
                cc.send(
                    NodeId(0),
                    NodeId(1),
                    7,
                    Bytes::from_static(b"x"),
                    Transport::Tcp,
                )
                .await;
            });
            let h = sim.handle();
            sim.run_to(async move {
                ep.recv().await;
                h.now()
            })
        };
        let unloaded = deliver_time(false);
        let loaded = deliver_time(true);
        // Four competing jobs at a 1ms quantum should delay receive-side
        // processing by several milliseconds.
        assert!(loaded > unloaded + ms(3), "loaded={loaded} unloaded={unloaded}");
    }

    #[test]
    fn rdma_read_is_unaffected_by_target_load() {
        let read_time = |loaded: bool| -> u64 {
            let (sim, c) = setup(2);
            let r = c.register(NodeId(1), 64);
            if loaded {
                for _ in 0..4 {
                    let cpu = c.cpu(NodeId(1));
                    sim.spawn(async move { cpu.execute(ms(50)).await });
                }
            }
            let addr = RemoteAddr {
                node: NodeId(1),
                region: r,
                offset: 0,
            };
            let cc = c.clone();
            let h = sim.handle();
            sim.run_to(async move {
                cc.rdma_read(NodeId(0), addr, 8).await;
                h.now()
            })
        };
        assert_eq!(read_time(false), read_time(true));
    }

    #[test]
    fn outbound_link_serializes_large_reads_from_one_holder() {
        let (sim, c) = setup(3);
        let r = c.register(NodeId(0), 1 << 20);
        let addr = RemoteAddr {
            node: NodeId(0),
            region: r,
            offset: 0,
        };
        let len = 512 * 1024;
        let mut joins = Vec::new();
        for n in 1..3u32 {
            let cc = c.clone();
            let h = sim.handle();
            joins.push(sim.spawn(async move {
                cc.rdma_read(NodeId(n), addr, len).await;
                h.now()
            }));
        }
        sim.run();
        let t1 = joins[0].try_take().unwrap();
        let t2 = joins[1].try_take().unwrap();
        let wire = FabricModel::calibrated_2007().ib_bytes_time(len);
        // The second read had to wait for the first's transmission.
        assert!(t2 >= t1 + wire - us(1), "t1={t1} t2={t2} wire={wire}");
    }

    #[test]
    fn unbound_port_drops_message() {
        let (sim, c) = setup(2);
        let cc = c.clone();
        sim.run_to(async move {
            cc.send(
                NodeId(0),
                NodeId(1),
                99,
                Bytes::from_static(b"void"),
                Transport::RdmaSend,
            )
            .await;
        });
        // Nothing to assert beyond "did not panic / did not deadlock".
        assert_eq!(c.stats().sends_rdma, 1);
    }

    #[test]
    fn endpoint_drop_unbinds_port() {
        let (sim, c) = setup(2);
        {
            let _ep = c.bind(NodeId(1), 7);
        }
        // Rebinding after drop works.
        let _ep2 = c.bind(NodeId(1), 7);
        drop(sim);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let (_sim, c) = setup(2);
        let _a = c.bind(NodeId(1), 7);
        let _b = c.bind(NodeId(1), 7);
    }

    #[test]
    fn kstat_is_remotely_readable() {
        let (sim, c) = setup(2);
        let cpu = c.cpu(NodeId(1));
        cpu.thread_started();
        cpu.thread_started();
        let addr = c.kstat_addr(NodeId(1));
        let cc = c.clone();
        let stats = sim.run_to(async move {
            let raw = cc.rdma_read(NodeId(0), addr, KSTAT_REGION_LEN).await;
            crate::kstat::KernelStats::decode(&raw)
        });
        assert_eq!(stats.app_threads, 2);
    }
}
