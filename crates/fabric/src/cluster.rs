//! The cluster: nodes, registered regions, verbs, and send/recv transport.
//!
//! Timing composition (constants from [`FabricModel`], documented per verb):
//!
//! * `rdma_read(len)` — post overhead, half the base round trip for the
//!   request to reach the target NIC, queueing on the target's outbound link
//!   for `len` bytes of transmission (the data is sampled when transmission
//!   begins), then half the base back. Total ≈ `post + read_base + bytes`.
//! * `rdma_write(len)` — post overhead, queueing on the issuer's outbound
//!   link for `len` bytes, half the base for the data to land (the bytes
//!   become visible at the target then), half the base for the NIC-level
//!   ack. Total ≈ `post + bytes + write_base`.
//! * `atomic_cas` / `atomic_faa` — post overhead, half the base each way;
//!   the operation is linearized at the target NIC at the halfway instant.
//! * `send(RdmaSend)` — like a write into the target's receive queue: no
//!   target CPU participation; the message appears in the bound endpoint's
//!   mailbox.
//! * `send(Tcp)` — charges `tcp_send_cpu(len)` on the *sender's* CPU and
//!   `tcp_recv_cpu(len)` on the *target's* CPU (where it competes round-robin
//!   with application load) before the message is delivered.
//!
//! Outbound-link queueing models the single resource that matters for the
//! cooperative-caching experiments: a popular cache holder serving many
//! remote fetches serializes them on its transmit link.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use bytes::Bytes;
use dc_sim::fxhash::FxHashMap;
use dc_sim::sync::{channel, Receiver, Semaphore, Sender};
use dc_sim::{SimHandle, SimTime};
use dc_trace::{Counter, Gauge, Registry, Subsys, Tracer};

use crate::faults::{inflate, FabricError, FaultPlan, FaultStats, RetryPolicy};
use crate::kstat::KSTAT_REGION_LEN;
use crate::mem::{RegionData, RegionId, RemoteAddr};
use crate::model::FabricModel;

/// Identifier of a node in the cluster (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Which transport a two-sided message uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// NIC-delivered send: no target CPU participation before delivery.
    RdmaSend,
    /// Host TCP/IP: protocol processing charged to both CPUs.
    Tcp,
}

/// A delivered two-sided message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Port the sender addressed (the receiver's bound port).
    pub port: u16,
    /// Payload.
    pub data: Bytes,
    /// Immediate data riding the completion (the RDMA write-with-immediate
    /// analogue): protocol headers travel here so the payload `Bytes` can
    /// pass through untouched. Plain sends carry 0.
    pub imm: u64,
    /// Congestion-experienced mark: set when the sender's outbound link
    /// queue was at or above the cluster's ECN threshold when this message
    /// started transmitting (see [`Cluster::set_ecn_threshold`]). Always
    /// `false` until a threshold is installed.
    pub ecn: bool,
    /// Virtual time the message entered the receiver's mailbox. Consumers
    /// (the dc-svc pump) subtract this from their dequeue time to measure
    /// queue wait; pure data, never consulted by the fabric itself.
    pub arrived_ns: SimTime,
}

/// Per-cluster verb counters, for ablations and sanity checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerbStats {
    /// Completed RDMA reads.
    pub reads: u64,
    /// Completed RDMA writes.
    pub writes: u64,
    /// Completed compare-and-swap atomics.
    pub cas: u64,
    /// Completed fetch-and-add atomics.
    pub faa: u64,
    /// RDMA sends delivered.
    pub sends_rdma: u64,
    /// TCP messages delivered.
    pub sends_tcp: u64,
    /// Payload bytes moved by reads.
    pub bytes_read: u64,
    /// Payload bytes moved by writes.
    pub bytes_written: u64,
    /// Messages actually placed into a bound endpoint's mailbox (recv side;
    /// excludes drops, crashes, and unbound ports).
    pub delivered: u64,
    /// Lane-level retransmissions (reliable-send retries reported by the
    /// socket layer).
    pub retransmits: u64,
    /// High-water mark of any lane's reorder (early-arrival) buffer.
    pub reorder_hwm: u64,
    /// Times a sender blocked on exhausted flow-control credits or ring
    /// space.
    pub credit_stalls: u64,
}

struct NodeInner {
    regions: RefCell<Vec<RegionData>>,
    cpu: crate::cpu::CpuModel,
    ports: RefCell<FxHashMap<u16, Sender<Message>>>,
    /// Outbound link: serializes payload transmission from this node.
    link: Semaphore,
}

struct ClusterInner {
    sim: SimHandle,
    model: FabricModel,
    nodes: RefCell<Vec<Rc<NodeInner>>>,
    stats: VerbCounters,
    next_port: Cell<u16>,
    /// Label + owner of the most recent port allocation, kept so a port-space
    /// exhaustion panic can name the subsystem that burned through the space.
    last_port_owner: RefCell<String>,
    /// Live bound endpoints (`fabric.ports.bound`): +1 on `bind`, −1 when the
    /// endpoint drops. A steadily climbing gauge means some service leaks
    /// per-call bindings instead of reusing a multiplexed port.
    ports_bound: Gauge,
    /// Installed fault schedule, if any. `None` means the fabric is
    /// perfectly reliable and every `try_*` verb is infallible in practice.
    faults: RefCell<Option<Rc<FaultPlan>>>,
    /// ECN marking threshold: a message is marked congestion-experienced
    /// when its sender's outbound link has at least this many transmissions
    /// queued ahead of it. `None` (the default) disables marking entirely,
    /// so pre-existing workloads are byte-identical.
    ecn_threshold: Cell<Option<usize>>,
    /// Messages delivered with the ECN mark set (`fabric.ecn.marks`).
    ecn_marks: Counter,
    /// Live transport queue pairs (`fabric.qp.active`): multiplexed lanes
    /// such as dc-sockets' eRPC count their bound QP endpoints here, so a
    /// scenario can prove its connection count scales with nodes, not with
    /// logical sessions.
    qp_active: Gauge,
    tracer: Tracer,
    metrics: Rc<Registry>,
}

/// Verb counters, backed by the unified metrics registry: `stats()` reads
/// the same storage that `metrics().snapshot()` enumerates under the
/// `fabric.*` / `sockets.*` names.
struct VerbCounters {
    reads: Counter,
    writes: Counter,
    cas: Counter,
    faa: Counter,
    sends_rdma: Counter,
    sends_tcp: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    delivered: Counter,
    retransmits: Counter,
    reorder_hwm: Gauge,
    credit_stalls: Counter,
}

impl VerbCounters {
    fn new(reg: &Registry) -> VerbCounters {
        VerbCounters {
            reads: reg.counter("fabric.verbs.read"),
            writes: reg.counter("fabric.verbs.write"),
            cas: reg.counter("fabric.verbs.cas"),
            faa: reg.counter("fabric.verbs.faa"),
            sends_rdma: reg.counter("fabric.verbs.send_rdma"),
            sends_tcp: reg.counter("fabric.verbs.send_tcp"),
            bytes_read: reg.counter("fabric.bytes.read"),
            bytes_written: reg.counter("fabric.bytes.written"),
            delivered: reg.counter("fabric.delivered"),
            retransmits: reg.counter("sockets.retransmits"),
            reorder_hwm: reg.gauge("sockets.reorder_hwm"),
            credit_stalls: reg.counter("sockets.credit_stalls"),
        }
    }
}

/// Handle to the simulated cluster; clone freely.
#[derive(Clone)]
pub struct Cluster {
    inner: Rc<ClusterInner>,
}

impl Cluster {
    /// Build a cluster of `nodes` nodes under the given cost model. Each
    /// node's region 0 is its kernel-statistics block.
    pub fn new(sim: SimHandle, model: FabricModel, nodes: usize) -> Cluster {
        let metrics = Rc::new(Registry::new());
        // Register the fault counters up front so faultless runs snapshot
        // them as explicit zeros (absent ≠ zero in cross-run diffs).
        FaultPlan::preregister_counters(&metrics);
        let tracer = Tracer::new(sim.clone());
        let cluster = Cluster {
            inner: Rc::new(ClusterInner {
                sim,
                model,
                nodes: RefCell::new(Vec::new()),
                stats: VerbCounters::new(&metrics),
                next_port: Cell::new(1024),
                last_port_owner: RefCell::new(String::from("none")),
                ports_bound: metrics.gauge("fabric.ports.bound"),
                faults: RefCell::new(None),
                ecn_threshold: Cell::new(None),
                ecn_marks: metrics.counter("fabric.ecn.marks"),
                qp_active: metrics.gauge("fabric.qp.active"),
                tracer,
                metrics,
            }),
        };
        for _ in 0..nodes {
            cluster.add_node();
        }
        cluster
    }

    /// Add one node; returns its id.
    pub fn add_node(&self) -> NodeId {
        let kstat = RegionData::new(KSTAT_REGION_LEN);
        let cpu =
            crate::cpu::CpuModel::new(self.inner.sim.clone(), self.inner.model.cpu, kstat.clone());
        let node = Rc::new(NodeInner {
            regions: RefCell::new(vec![kstat]),
            cpu,
            ports: RefCell::new(FxHashMap::default()),
            link: Semaphore::new(1),
        });
        let mut nodes = self.inner.nodes.borrow_mut();
        nodes.push(node);
        NodeId((nodes.len() - 1) as u32)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// Whether the cluster has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The simulation handle driving this cluster.
    pub fn sim(&self) -> &SimHandle {
        &self.inner.sim
    }

    /// The cost model in force.
    pub fn model(&self) -> &FabricModel {
        &self.inner.model
    }

    /// Verb counters so far.
    pub fn stats(&self) -> VerbStats {
        let s = &self.inner.stats;
        VerbStats {
            reads: s.reads.get(),
            writes: s.writes.get(),
            cas: s.cas.get(),
            faa: s.faa.get(),
            sends_rdma: s.sends_rdma.get(),
            sends_tcp: s.sends_tcp.get(),
            bytes_read: s.bytes_read.get(),
            bytes_written: s.bytes_written.get(),
            delivered: s.delivered.get(),
            retransmits: s.retransmits.get(),
            reorder_hwm: s.reorder_hwm.get().max(0) as u64,
            credit_stalls: s.credit_stalls.get(),
        }
    }

    /// The cluster's trace recorder. Disabled (free) by default; enable with
    /// `cluster.tracer().enable(mode)` to capture verb/protocol/fault events
    /// for Perfetto export. Enabling never changes simulated behaviour.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// The unified metrics registry every layer of this cluster registers
    /// into (`fabric.*`, `sockets.*`, `fault.*`, plus service-level names).
    pub fn metrics(&self) -> Rc<Registry> {
        Rc::clone(&self.inner.metrics)
    }

    /// Copy the executor's scheduler counters into the registry as
    /// `sim.polls`, `sim.events`, `sim.timers_fired`, and
    /// `sim.barrier_waits`, plus a `sim.shards` gauge, so metric snapshots
    /// carry the engine work (and engine shape) that produced them. A
    /// cluster runs inside one shard's executor, so `sim.shards` reads 1
    /// and `sim.barrier_waits` stays 0 unless the enclosing scenario runs
    /// on the sharded driver and folds its totals in. The counters only
    /// ever grow, so this can be called before every snapshot.
    pub fn sync_sim_metrics(&self) {
        let c = self.inner.sim.counters();
        for (name, v) in [
            ("sim.polls", c.polls),
            ("sim.events", c.events),
            ("sim.timers_fired", c.timers_fired),
            ("sim.barrier_waits", c.barrier_waits),
        ] {
            let ctr = self.inner.metrics.counter(name);
            ctr.add(v.saturating_sub(ctr.get()));
        }
        self.inner.metrics.gauge("sim.shards").set(1);
    }

    /// Record one lane-level retransmission (called by the socket layer).
    pub fn note_retransmit(&self) {
        self.inner.stats.retransmits.inc();
    }

    /// Record a sender blocking on exhausted credits/ring space on `node`.
    pub fn note_credit_stall(&self, node: NodeId) {
        self.inner.stats.credit_stalls.inc();
        self.inner
            .tracer
            .instant(node.0, Subsys::Sockets, "credit.stall", Vec::new());
    }

    /// Report a lane's reorder-buffer depth; keeps the high-water mark.
    pub fn note_reorder_depth(&self, depth: usize) {
        self.inner.stats.reorder_hwm.set_max(depth as i64);
    }

    /// Install a fault schedule. Every verb and send consults it from now
    /// on; CPU-stall windows are realized as hog jobs spawned here. May be
    /// called at most once per cluster.
    pub fn install_faults(&self, plan: FaultPlan) {
        assert!(
            self.inner.faults.borrow().is_none(),
            "fault plan already installed"
        );
        plan.bind_counters(&self.inner.metrics);
        // The whole schedule is known now, so export the windows with
        // explicit timestamps instead of spawning marker tasks at runtime —
        // extra tasks would shift executor timer ordering and perturb the
        // very schedule being observed.
        let tr = &self.inner.tracer;
        for w in plan.crash_windows() {
            tr.complete_at(
                w.start,
                w.end.saturating_sub(w.start),
                w.node.0,
                Subsys::Fault,
                "fault.crash",
                Vec::new(),
            );
        }
        for w in plan.stall_windows() {
            tr.complete_at(
                w.start,
                w.dur,
                w.node.0,
                Subsys::Fault,
                "fault.stall",
                vec![("cpu_ns", w.dur.into())],
            );
        }
        // Latency windows are cluster-global; render them on node 0's track.
        for w in plan.latency_windows() {
            tr.complete_at(
                w.start,
                w.end.saturating_sub(w.start),
                0,
                Subsys::Fault,
                "fault.latency",
                vec![("factor_milli", w.factor_milli.into())],
            );
        }
        for w in plan.stall_windows() {
            let cpu = self.cpu(w.node);
            let sim = self.inner.sim.clone();
            let (start, dur) = (w.start, w.dur);
            self.inner.sim.spawn_detached(async move {
                sim.sleep_until(start).await;
                cpu.execute(dur).await;
            });
        }
        *self.inner.faults.borrow_mut() = Some(Rc::new(plan));
    }

    /// The installed fault plan, if any.
    pub fn faults(&self) -> Option<Rc<FaultPlan>> {
        self.inner.faults.borrow().clone()
    }

    /// Fault-exercise counters (zeroes when no plan is installed).
    pub fn fault_stats(&self) -> FaultStats {
        self.inner
            .faults
            .borrow()
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default()
    }

    /// Latency multiplier (milli) in force right now; 1000 when faultless.
    fn fault_factor(&self) -> u64 {
        match &*self.inner.faults.borrow() {
            Some(p) => p.latency_factor_milli(self.inner.sim.now()),
            None => 1000,
        }
    }

    /// Whether `node` is currently crashed; records the hit if so.
    fn fault_down(&self, node: NodeId) -> bool {
        match &*self.inner.faults.borrow() {
            Some(p) => {
                let down = p.is_down(node, self.inner.sim.now());
                if down {
                    p.note_unreachable();
                    self.inner.tracer.instant(
                        node.0,
                        Subsys::Fault,
                        "fault.unreachable",
                        Vec::new(),
                    );
                }
                down
            }
            None => false,
        }
    }

    /// Whether the message under way is dropped in flight.
    fn fault_drop(&self, from: NodeId, to: NodeId) -> bool {
        match &*self.inner.faults.borrow() {
            Some(p) => {
                let dropped = p.should_drop();
                if dropped {
                    self.inner.tracer.instant(
                        to.0,
                        Subsys::Fault,
                        "fault.drop",
                        vec![("src", from.0.into())],
                    );
                }
                dropped
            }
            None => false,
        }
    }

    fn note_retry(&self) {
        if let Some(p) = &*self.inner.faults.borrow() {
            p.note_retry();
        }
    }

    /// Sleep out a budgeted-retry backoff, stamped as a `retry`-stage span
    /// on the issuing node so the critical-path analyzer can attribute
    /// retry/backoff time. Recording is tracer-gated and span-only (no
    /// extra tasks or timers beyond the sleep the retry loop already did),
    /// so traced and untraced runs schedule identically.
    async fn backoff_traced(&self, from: NodeId, ns: u64) {
        let t0 = self.inner.tracer.begin();
        self.inner.sim.sleep(ns).await;
        if let Some(t0) = t0 {
            self.inner.tracer.complete(
                t0,
                from.0,
                Subsys::Fabric,
                "verb.backoff",
                vec![("stage", "retry".into())],
            );
        }
    }

    fn node(&self, id: NodeId) -> Rc<NodeInner> {
        Rc::clone(
            self.inner
                .nodes
                .borrow()
                .get(id.idx())
                .unwrap_or_else(|| panic!("no such node: {id:?}")),
        )
    }

    /// The CPU model of `node` (for running application work / load).
    pub fn cpu(&self, node: NodeId) -> crate::cpu::CpuModel {
        self.node(node).cpu.clone()
    }

    /// Register a zeroed memory region of `len` bytes on `node`.
    pub fn register(&self, node: NodeId, len: usize) -> RegionId {
        let n = self.node(node);
        let mut regions = n.regions.borrow_mut();
        regions.push(RegionData::new(len));
        RegionId((regions.len() - 1) as u32)
    }

    /// Node-local access to a registered region (no fabric cost — this is
    /// the owning application touching its own memory).
    pub fn region(&self, node: NodeId, region: RegionId) -> RegionData {
        self.node(node)
            .regions
            .borrow()
            .get(region.0 as usize)
            .unwrap_or_else(|| panic!("no such region {region:?} on {node:?}"))
            .clone()
    }

    /// Remote address of `node`'s kernel-statistics block.
    pub fn kstat_addr(&self, node: NodeId) -> RemoteAddr {
        RemoteAddr {
            node,
            region: RegionId(0),
            offset: 0,
        }
    }

    /// One-sided RDMA read of `len` bytes at `addr`, issued by `from`.
    /// The target CPU is not involved.
    ///
    /// Infallible wrapper over [`Cluster::try_rdma_read`]: retries crash-
    /// window failures on the default [`RetryPolicy`] and panics once the
    /// budget is exhausted (callers that can degrade use the `try_` form).
    pub async fn rdma_read(&self, from: NodeId, addr: RemoteAddr, len: usize) -> Bytes {
        let p = RetryPolicy::default();
        for attempt in 0..p.max_attempts {
            match self.try_rdma_read(from, addr, len).await {
                Ok(data) => return data,
                Err(_) if attempt + 1 < p.max_attempts => {
                    self.note_retry();
                    self.backoff_traced(from, p.backoff_after(attempt)).await;
                }
                Err(e) => panic!("rdma_read at {addr:?}: {e} (retry budget exhausted)"),
            }
        }
        unreachable!()
    }

    /// Fallible RDMA read: fails with [`FabricError::Unreachable`] when the
    /// issuer or the target is inside a crash window. No bytes are returned
    /// on failure; nothing is mutated either way.
    pub async fn try_rdma_read(
        &self,
        from: NodeId,
        addr: RemoteAddr,
        len: usize,
    ) -> Result<Bytes, FabricError> {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        let f = self.fault_factor();
        let t0 = self.inner.tracer.begin();
        if self.fault_down(from) {
            return Err(FabricError::Unreachable(from));
        }
        sim.sleep(inflate(m.post_overhead_ns + m.rdma_read_base_ns / 2, f))
            .await;
        // The request has reached the target NIC: the target must be up to
        // sample and transmit the data.
        if self.fault_down(addr.node) {
            return Err(FabricError::Unreachable(addr.node));
        }
        let target = self.node(addr.node);
        // Queue on the target's outbound link for the payload.
        let permit = target.link.acquire_permit().await;
        let data = target.regions.borrow()[addr.region.0 as usize].read_bytes(addr.offset, len);
        sim.sleep(inflate(m.ib_bytes_time(len), f)).await;
        drop(permit);
        sim.sleep(inflate(m.rdma_read_base_ns - m.rdma_read_base_ns / 2, f))
            .await;
        self.inner.stats.reads.inc();
        self.inner.stats.bytes_read.add(len as u64);
        if let Some(t0) = t0 {
            self.inner.tracer.complete(
                t0,
                from.0,
                Subsys::Fabric,
                "verb.read",
                vec![
                    ("bytes", len.into()),
                    ("target", addr.node.0.into()),
                    ("remote_cpu_ns", 0u64.into()),
                    ("stage", "wire".into()),
                ],
            );
        }
        Ok(data)
    }

    /// One-sided RDMA write of `data` to `addr`, issued by `from`.
    /// Completes after the NIC-level acknowledgement.
    ///
    /// Infallible wrapper over [`Cluster::try_rdma_write`]; see
    /// [`Cluster::rdma_read`] for the retry/panic contract.
    pub async fn rdma_write(&self, from: NodeId, addr: RemoteAddr, data: &[u8]) {
        let p = RetryPolicy::default();
        for attempt in 0..p.max_attempts {
            match self.try_rdma_write(from, addr, data).await {
                Ok(()) => return,
                Err(_) if attempt + 1 < p.max_attempts => {
                    self.note_retry();
                    self.backoff_traced(from, p.backoff_after(attempt)).await;
                }
                Err(e) => panic!("rdma_write at {addr:?}: {e} (retry budget exhausted)"),
            }
        }
        unreachable!()
    }

    /// Fallible RDMA write. On `Err` the target memory was *not* modified,
    /// so retrying is always safe.
    pub async fn try_rdma_write(
        &self,
        from: NodeId,
        addr: RemoteAddr,
        data: &[u8],
    ) -> Result<(), FabricError> {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        let f = self.fault_factor();
        let t0 = self.inner.tracer.begin();
        if self.fault_down(from) {
            return Err(FabricError::Unreachable(from));
        }
        sim.sleep(inflate(m.post_overhead_ns, f)).await;
        let src = self.node(from);
        let permit = src.link.acquire_permit().await;
        sim.sleep(inflate(m.ib_bytes_time(data.len()), f)).await;
        drop(permit);
        sim.sleep(inflate(m.rdma_write_base_ns / 2, f)).await;
        // The payload is about to land: the target must be up.
        if self.fault_down(addr.node) {
            return Err(FabricError::Unreachable(addr.node));
        }
        let target = self.node(addr.node);
        target.regions.borrow()[addr.region.0 as usize].write(addr.offset, data);
        sim.sleep(inflate(m.rdma_write_base_ns - m.rdma_write_base_ns / 2, f))
            .await;
        self.inner.stats.writes.inc();
        self.inner.stats.bytes_written.add(data.len() as u64);
        if let Some(t0) = t0 {
            self.inner.tracer.complete(
                t0,
                from.0,
                Subsys::Fabric,
                "verb.write",
                vec![
                    ("bytes", data.len().into()),
                    ("target", addr.node.0.into()),
                    ("remote_cpu_ns", 0u64.into()),
                    ("stage", "wire".into()),
                ],
            );
        }
        Ok(())
    }

    /// Remote compare-and-swap on the u64 at `addr`; returns the prior value
    /// (swap happened iff it equals `expect`). Linearized at the target NIC.
    ///
    /// Infallible wrapper over [`Cluster::try_atomic_cas`]; see
    /// [`Cluster::rdma_read`] for the retry/panic contract.
    pub async fn atomic_cas(&self, from: NodeId, addr: RemoteAddr, expect: u64, swap: u64) -> u64 {
        let p = RetryPolicy::default();
        for attempt in 0..p.max_attempts {
            match self.try_atomic_cas(from, addr, expect, swap).await {
                Ok(old) => return old,
                Err(_) if attempt + 1 < p.max_attempts => {
                    self.note_retry();
                    self.backoff_traced(from, p.backoff_after(attempt)).await;
                }
                Err(e) => panic!("atomic_cas at {addr:?}: {e} (retry budget exhausted)"),
            }
        }
        unreachable!()
    }

    /// Fallible compare-and-swap. On `Err` the word was *not* touched (the
    /// operation fails before linearization), so retrying is safe.
    pub async fn try_atomic_cas(
        &self,
        from: NodeId,
        addr: RemoteAddr,
        expect: u64,
        swap: u64,
    ) -> Result<u64, FabricError> {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        let f = self.fault_factor();
        let t0 = self.inner.tracer.begin();
        if self.fault_down(from) {
            return Err(FabricError::Unreachable(from));
        }
        sim.sleep(inflate(m.post_overhead_ns + m.atomic_base_ns / 2, f))
            .await;
        if self.fault_down(addr.node) {
            return Err(FabricError::Unreachable(addr.node));
        }
        let target = self.node(addr.node);
        let old =
            target.regions.borrow()[addr.region.0 as usize].cas_u64(addr.offset, expect, swap);
        sim.sleep(inflate(m.atomic_base_ns - m.atomic_base_ns / 2, f))
            .await;
        self.inner.stats.cas.inc();
        if let Some(t0) = t0 {
            self.inner.tracer.complete(
                t0,
                from.0,
                Subsys::Fabric,
                "verb.cas",
                vec![
                    ("target", addr.node.0.into()),
                    ("swapped", u64::from(old == expect).into()),
                    ("remote_cpu_ns", 0u64.into()),
                    ("stage", "wire".into()),
                ],
            );
        }
        Ok(old)
    }

    /// Remote fetch-and-add (wrapping) on the u64 at `addr`; returns the
    /// prior value. Linearized at the target NIC.
    ///
    /// Infallible wrapper over [`Cluster::try_atomic_faa`]; see
    /// [`Cluster::rdma_read`] for the retry/panic contract.
    pub async fn atomic_faa(&self, from: NodeId, addr: RemoteAddr, add: u64) -> u64 {
        let p = RetryPolicy::default();
        for attempt in 0..p.max_attempts {
            match self.try_atomic_faa(from, addr, add).await {
                Ok(old) => return old,
                Err(_) if attempt + 1 < p.max_attempts => {
                    self.note_retry();
                    self.backoff_traced(from, p.backoff_after(attempt)).await;
                }
                Err(e) => panic!("atomic_faa at {addr:?}: {e} (retry budget exhausted)"),
            }
        }
        unreachable!()
    }

    /// Fallible fetch-and-add. On `Err` the word was *not* touched, so
    /// retrying is safe (no double-add).
    pub async fn try_atomic_faa(
        &self,
        from: NodeId,
        addr: RemoteAddr,
        add: u64,
    ) -> Result<u64, FabricError> {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        let f = self.fault_factor();
        let t0 = self.inner.tracer.begin();
        if self.fault_down(from) {
            return Err(FabricError::Unreachable(from));
        }
        sim.sleep(inflate(m.post_overhead_ns + m.atomic_base_ns / 2, f))
            .await;
        if self.fault_down(addr.node) {
            return Err(FabricError::Unreachable(addr.node));
        }
        let target = self.node(addr.node);
        let old = target.regions.borrow()[addr.region.0 as usize].faa_u64(addr.offset, add);
        sim.sleep(inflate(m.atomic_base_ns - m.atomic_base_ns / 2, f))
            .await;
        self.inner.stats.faa.inc();
        if let Some(t0) = t0 {
            self.inner.tracer.complete(
                t0,
                from.0,
                Subsys::Fabric,
                "verb.faa",
                vec![
                    ("target", addr.node.0.into()),
                    ("remote_cpu_ns", 0u64.into()),
                    ("stage", "wire".into()),
                ],
            );
        }
        Ok(old)
    }

    /// Allocate a cluster-unique port number (usable on any node). Ports
    /// below 1024 are reserved for well-known services. Prefer
    /// [`Cluster::alloc_port_for`], which makes exhaustion diagnosable.
    pub fn alloc_port(&self) -> u16 {
        let p = self.inner.next_port.get();
        assert!(
            p < u16::MAX,
            "port space exhausted ({} dynamic ports allocated; last labeled \
             owner: {}) — some subsystem allocates per-call ports without \
             reusing a multiplexed client",
            p - 1024,
            self.inner.last_port_owner.borrow(),
        );
        self.inner.next_port.set(p + 1);
        p
    }

    /// Allocate a cluster-unique port, recording the owning node and
    /// subsystem label so a port-space exhaustion panic names the culprit
    /// instead of failing with a bare assertion.
    pub fn alloc_port_for(&self, node: NodeId, label: &str) -> u16 {
        let p = self.inner.next_port.get();
        assert!(
            p < u16::MAX,
            "port space exhausted allocating '{label}' for {node:?} \
             ({} dynamic ports allocated; previous labeled owner: {}) — some \
             subsystem allocates per-call ports without reusing a multiplexed \
             client",
            p - 1024,
            self.inner.last_port_owner.borrow(),
        );
        {
            use std::fmt::Write as _;
            let mut owner = self.inner.last_port_owner.borrow_mut();
            owner.clear();
            let _ = write!(owner, "{label} for {node:?}");
        }
        self.inner.next_port.set(p + 1);
        p
    }

    /// Bind a receive endpoint on `(node, port)`. Panics if the port is
    /// already bound.
    pub fn bind(&self, node: NodeId, port: u16) -> Endpoint {
        let (tx, rx) = channel();
        let n = self.node(node);
        let prev = n.ports.borrow_mut().insert(port, tx);
        assert!(prev.is_none(), "port {port} already bound on {node:?}");
        self.inner.ports_bound.add(1);
        Endpoint {
            node: Rc::downgrade(&n),
            id: node,
            port,
            rx,
            bound: self.inner.ports_bound.clone(),
        }
    }

    /// Send `data` from `from` to `(to, port)` over `transport`. Completes
    /// when the message is delivered into the endpoint's mailbox (for TCP
    /// that includes receiver-side protocol processing, which competes with
    /// application load for the target CPU). Messages to unbound ports are
    /// silently dropped, like a network — and so are messages hit by an
    /// installed fault plan (unreliable-datagram semantics; use
    /// [`Cluster::send_reliable`] for the RC-QP retransmitting flavor).
    pub async fn send(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: Bytes,
        transport: Transport,
    ) {
        let _ = self.try_send(from, to, port, data, transport).await;
    }

    /// Fallible send: `Ok(())` means the message was placed in the target
    /// mailbox (or hit an unbound port); `Err` means it was provably *not*
    /// delivered — either endpoint was crashed or the wire dropped it — so
    /// retrying cannot duplicate it.
    pub async fn try_send(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: Bytes,
        transport: Transport,
    ) -> Result<(), FabricError> {
        self.try_send_ref(from, to, port, &data, transport).await
    }

    /// Payload-sharing body of [`Cluster::try_send`]: the buffer is cloned
    /// only at the delivery point, so retry loops re-post the same payload
    /// across attempts without a per-attempt clone.
    async fn try_send_ref(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: &Bytes,
        transport: Transport,
    ) -> Result<(), FabricError> {
        self.try_send_imm_ref(from, to, port, data, 0, transport)
            .await
    }

    /// [`Cluster::try_send`] carrying immediate data: `imm` rides the
    /// completion next to the payload, so protocol headers need no prepend
    /// copy and the caller's `Bytes` reaches the receiver's mailbox as the
    /// same refcounted buffer. The delivered [`Message`] also carries the
    /// ECN mark sampled from the sender's link queue (see
    /// [`Cluster::set_ecn_threshold`]). This is the zero-copy hot path of
    /// the dc-sockets eRPC lane.
    pub async fn try_send_imm_ref(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: &Bytes,
        imm: u64,
        transport: Transport,
    ) -> Result<(), FabricError> {
        let m = &self.inner.model;
        let sim = self.inner.sim.clone();
        let len = data.len();
        let f = self.fault_factor();
        let t0 = self.inner.tracer.begin();
        if self.fault_down(from) {
            return Err(FabricError::Unreachable(from));
        }
        match transport {
            Transport::RdmaSend => {
                sim.sleep(inflate(m.post_overhead_ns, f)).await;
                let src = self.node(from);
                // Sample congestion before queueing for the link: the queue
                // ahead of this message is what the mark is about.
                let ecn = self.ecn_sample(&src);
                let permit = src.link.acquire_permit().await;
                sim.sleep(inflate(m.ib_bytes_time(len), f)).await;
                drop(permit);
                sim.sleep(inflate(m.rdma_send_base_ns, f)).await;
                self.inner.stats.sends_rdma.inc();
                if self.fault_down(to) {
                    return Err(FabricError::Unreachable(to));
                }
                if self.fault_drop(from, to) {
                    return Err(FabricError::Dropped);
                }
                self.deliver(from, to, port, data.clone(), imm, ecn);
                if let Some(t0) = t0 {
                    self.inner.tracer.complete(
                        t0,
                        from.0,
                        Subsys::Fabric,
                        "verb.send_rdma",
                        vec![
                            ("bytes", len.into()),
                            ("target", to.0.into()),
                            ("remote_cpu_ns", 0u64.into()),
                            ("stage", "wire".into()),
                        ],
                    );
                }
            }
            Transport::Tcp => {
                // Sender-side stack processing (copy into kernel buffers).
                let src = self.node(from);
                src.cpu.execute(m.tcp_send_cpu(len)).await;
                let ecn = self.ecn_sample(&src);
                let permit = src.link.acquire_permit().await;
                sim.sleep(inflate(m.tcp_bytes_time(len), f)).await;
                drop(permit);
                sim.sleep(inflate(m.tcp_base_ns, f)).await;
                self.inner.stats.sends_tcp.inc();
                if self.fault_down(to) {
                    return Err(FabricError::Unreachable(to));
                }
                if self.fault_drop(from, to) {
                    return Err(FabricError::Dropped);
                }
                // Receiver-side stack processing competes with load.
                let dst = self.node(to);
                dst.cpu.execute(m.tcp_recv_cpu(len)).await;
                self.deliver(from, to, port, data.clone(), imm, ecn);
                if let Some(t0) = t0 {
                    self.inner.tracer.complete(
                        t0,
                        from.0,
                        Subsys::Fabric,
                        "verb.send_tcp",
                        vec![
                            ("bytes", len.into()),
                            ("target", to.0.into()),
                            ("remote_cpu_ns", m.tcp_recv_cpu(len).into()),
                            ("stage", "wire".into()),
                        ],
                    );
                }
            }
        }
        Ok(())
    }

    /// Reliable-connection send (the simulated analogue of an InfiniBand RC
    /// QP): retransmits on drop or crash with exponential backoff under the
    /// default [`RetryPolicy`]. `Ok(())` means delivered exactly once;
    /// `Err` means never delivered — so protocol state machines built on
    /// this never see duplicates.
    pub async fn send_reliable(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: Bytes,
        transport: Transport,
    ) -> Result<(), FabricError> {
        self.send_reliable_with(from, to, port, data, transport, RetryPolicy::default())
            .await
    }

    /// [`Cluster::send_reliable`] with an explicit retry budget.
    pub async fn send_reliable_with(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        data: Bytes,
        transport: Transport,
        policy: RetryPolicy,
    ) -> Result<(), FabricError> {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        for attempt in 0..policy.max_attempts {
            match self.try_send_ref(from, to, port, &data, transport).await {
                Ok(()) => return Ok(()),
                Err(e) if attempt + 1 >= policy.max_attempts => return Err(e),
                Err(_) => {
                    self.note_retry();
                    self.backoff_traced(from, policy.backoff_after(attempt))
                        .await;
                }
            }
        }
        unreachable!()
    }

    fn deliver(&self, from: NodeId, to: NodeId, port: u16, data: Bytes, imm: u64, ecn: bool) {
        let n = self.node(to);
        let ports = n.ports.borrow();
        if let Some(tx) = ports.get(&port) {
            // A dead receiver (dropped endpoint) behaves like an unbound
            // port: the message is dropped.
            let _ = tx.send(Message {
                src: from,
                port,
                data,
                imm,
                ecn,
                arrived_ns: self.inner.sim.now(),
            });
            self.inner.stats.delivered.inc();
            if ecn {
                self.inner.ecn_marks.inc();
            }
        }
    }

    /// Whether a message entering `src`'s outbound link right now would be
    /// ECN-marked: at least `threshold` transmissions are already queued.
    fn ecn_sample(&self, src: &NodeInner) -> bool {
        self.inner
            .ecn_threshold
            .get()
            .is_some_and(|t| src.link.waiting() >= t)
    }

    /// Install (or clear) the ECN marking threshold, in queued-transmission
    /// units. This is a workload knob, deliberately *not* part of
    /// [`FabricModel`]: the calibration fingerprint covers the 2007 cost
    /// constants, and marking changes no timing — it only annotates
    /// delivered messages.
    pub fn set_ecn_threshold(&self, threshold: Option<usize>) {
        self.inner.ecn_threshold.set(threshold);
    }

    /// ECN-marked deliveries so far (`fabric.ecn.marks`).
    pub fn ecn_marks(&self) -> u64 {
        self.inner.ecn_marks.get()
    }

    /// Record a transport queue pair coming up (+1) or down (−1) on the
    /// `fabric.qp.active` gauge. Multiplexed lanes call this per bound QP
    /// endpoint so session-to-QP fan-in is observable.
    pub fn note_qp(&self, delta: i64) {
        self.inner.qp_active.add(delta);
    }

    /// Live transport queue pairs (`fabric.qp.active`).
    pub fn qp_active(&self) -> i64 {
        self.inner.qp_active.get()
    }
}

/// A bound receive endpoint; unbinds its port on drop.
pub struct Endpoint {
    node: std::rc::Weak<NodeInner>,
    id: NodeId,
    port: u16,
    rx: Receiver<Message>,
    bound: Gauge,
}

impl Endpoint {
    /// The node this endpoint lives on.
    pub fn node(&self) -> NodeId {
        self.id
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Await the next message.
    pub async fn recv(&mut self) -> Message {
        self.rx
            .recv()
            .await
            .expect("endpoint channel closed while bound")
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<Message> {
        self.rx.try_recv()
    }

    /// Messages currently queued.
    pub fn queued(&self) -> usize {
        self.rx.len()
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        if let Some(n) = self.node.upgrade() {
            n.ports.borrow_mut().remove(&self.port);
        }
        self.bound.add(-1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::time::{ms, us};
    use dc_sim::Sim;

    fn setup(n: usize) -> (Sim, Cluster) {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), n);
        (sim, cluster)
    }

    #[test]
    fn bound_ports_gauge_tracks_bind_and_drop() {
        let (_sim, c) = setup(2);
        let gauge = || c.metrics().gauge("fabric.ports.bound").get();
        assert_eq!(gauge(), 0);
        let p1 = c.alloc_port_for(NodeId(0), "test.a");
        let p2 = c.alloc_port_for(NodeId(1), "test.b");
        let e1 = c.bind(NodeId(0), p1);
        let e2 = c.bind(NodeId(1), p2);
        assert_eq!(gauge(), 2);
        drop(e1);
        assert_eq!(gauge(), 1);
        drop(e2);
        assert_eq!(gauge(), 0);
    }

    #[test]
    fn labeled_and_plain_port_allocation_share_one_space() {
        let (_sim, c) = setup(1);
        let a = c.alloc_port();
        let b = c.alloc_port_for(NodeId(0), "test.labeled");
        assert_eq!(b, a + 1);
    }

    #[test]
    fn rdma_write_then_read_round_trips_data() {
        let (sim, c) = setup(3);
        let r = c.register(NodeId(2), 1024);
        let addr = RemoteAddr {
            node: NodeId(2),
            region: r,
            offset: 100,
        };
        let cc = c.clone();
        let out = sim.run_to(async move {
            cc.rdma_write(NodeId(0), addr, b"payload").await;
            cc.rdma_read(NodeId(1), addr, 7).await
        });
        assert_eq!(&out[..], b"payload");
        let s = c.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.bytes_read, 7);
    }

    #[test]
    fn small_read_latency_matches_calibration() {
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        let cc = c.clone();
        let h = sim.handle();
        let t = sim.run_to(async move {
            cc.rdma_read(NodeId(0), addr, 1).await;
            h.now()
        });
        let m = FabricModel::calibrated_2007();
        // post + base + 1-byte wire time (2ns at 900 B/us).
        assert_eq!(t, m.post_overhead_ns + m.rdma_read_base_ns + 2);
    }

    #[test]
    fn rdma_ops_do_not_touch_target_cpu() {
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        let cc = c.clone();
        sim.run_to(async move {
            cc.rdma_write(NodeId(0), addr, &[1; 32]).await;
            cc.rdma_read(NodeId(0), addr, 32).await;
            cc.atomic_faa(NodeId(0), addr, 1).await;
        });
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, 0);
    }

    #[test]
    fn atomics_linearize_under_concurrency() {
        let (sim, c) = setup(5);
        let r = c.register(NodeId(0), 8);
        let addr = RemoteAddr {
            node: NodeId(0),
            region: r,
            offset: 0,
        };
        // Four nodes concurrently increment 100 times each.
        for n in 1..5u32 {
            let cc = c.clone();
            sim.spawn(async move {
                for _ in 0..100 {
                    cc.atomic_faa(NodeId(n), addr, 1).await;
                }
            });
        }
        sim.run();
        assert_eq!(c.region(NodeId(0), r).read_u64(0), 400);
    }

    #[test]
    fn cas_exactly_one_winner() {
        let (sim, c) = setup(4);
        let r = c.register(NodeId(0), 8);
        let addr = RemoteAddr {
            node: NodeId(0),
            region: r,
            offset: 0,
        };
        let mut joins = Vec::new();
        for n in 1..4u32 {
            let cc = c.clone();
            joins.push(
                sim.spawn(async move { cc.atomic_cas(NodeId(n), addr, 0, n as u64).await == 0 }),
            );
        }
        sim.run();
        let winners: usize = joins.iter().filter(|j| j.try_take() == Some(true)).count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn rdma_send_delivers_without_target_cpu() {
        let (sim, c) = setup(2);
        let mut ep = c.bind(NodeId(1), 7);
        let cc = c.clone();
        sim.spawn(async move {
            cc.send(
                NodeId(0),
                NodeId(1),
                7,
                Bytes::from_static(b"ping"),
                Transport::RdmaSend,
            )
            .await;
        });
        let msg = sim.run_to(async move { ep.recv().await });
        assert_eq!(&msg.data[..], b"ping");
        assert_eq!(msg.src, NodeId(0));
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, 0);
        assert_eq!(c.stats().sends_rdma, 1);
    }

    #[test]
    fn tcp_send_charges_both_cpus() {
        let (sim, c) = setup(2);
        let mut ep = c.bind(NodeId(1), 7);
        let cc = c.clone();
        sim.spawn(async move {
            cc.send(
                NodeId(0),
                NodeId(1),
                7,
                Bytes::from(vec![0u8; 2048]),
                Transport::Tcp,
            )
            .await;
        });
        sim.run_to(async move { ep.recv().await });
        let m = FabricModel::calibrated_2007();
        assert_eq!(c.cpu(NodeId(0)).snapshot().busy_ns, m.tcp_send_cpu(2048));
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, m.tcp_recv_cpu(2048));
    }

    #[test]
    fn tcp_delivery_is_delayed_by_target_load() {
        // Measure unloaded vs loaded delivery time of identical messages.
        let deliver_time = |loaded: bool| -> u64 {
            let (sim, c) = setup(2);
            if loaded {
                for _ in 0..4 {
                    let cpu = c.cpu(NodeId(1));
                    sim.spawn(async move { cpu.execute(ms(50)).await });
                }
            }
            let mut ep = c.bind(NodeId(1), 7);
            let cc = c.clone();
            sim.spawn(async move {
                cc.send(
                    NodeId(0),
                    NodeId(1),
                    7,
                    Bytes::from_static(b"x"),
                    Transport::Tcp,
                )
                .await;
            });
            let h = sim.handle();
            sim.run_to(async move {
                ep.recv().await;
                h.now()
            })
        };
        let unloaded = deliver_time(false);
        let loaded = deliver_time(true);
        // Four competing jobs at a 1ms quantum should delay receive-side
        // processing by several milliseconds.
        assert!(
            loaded > unloaded + ms(3),
            "loaded={loaded} unloaded={unloaded}"
        );
    }

    #[test]
    fn rdma_read_is_unaffected_by_target_load() {
        let read_time = |loaded: bool| -> u64 {
            let (sim, c) = setup(2);
            let r = c.register(NodeId(1), 64);
            if loaded {
                for _ in 0..4 {
                    let cpu = c.cpu(NodeId(1));
                    sim.spawn(async move { cpu.execute(ms(50)).await });
                }
            }
            let addr = RemoteAddr {
                node: NodeId(1),
                region: r,
                offset: 0,
            };
            let cc = c.clone();
            let h = sim.handle();
            sim.run_to(async move {
                cc.rdma_read(NodeId(0), addr, 8).await;
                h.now()
            })
        };
        assert_eq!(read_time(false), read_time(true));
    }

    #[test]
    fn outbound_link_serializes_large_reads_from_one_holder() {
        let (sim, c) = setup(3);
        let r = c.register(NodeId(0), 1 << 20);
        let addr = RemoteAddr {
            node: NodeId(0),
            region: r,
            offset: 0,
        };
        let len = 512 * 1024;
        let mut joins = Vec::new();
        for n in 1..3u32 {
            let cc = c.clone();
            let h = sim.handle();
            joins.push(sim.spawn(async move {
                cc.rdma_read(NodeId(n), addr, len).await;
                h.now()
            }));
        }
        sim.run();
        let t1 = joins[0].try_take().unwrap();
        let t2 = joins[1].try_take().unwrap();
        let wire = FabricModel::calibrated_2007().ib_bytes_time(len);
        // The second read had to wait for the first's transmission.
        assert!(t2 >= t1 + wire - us(1), "t1={t1} t2={t2} wire={wire}");
    }

    #[test]
    fn unbound_port_drops_message() {
        let (sim, c) = setup(2);
        let cc = c.clone();
        sim.run_to(async move {
            cc.send(
                NodeId(0),
                NodeId(1),
                99,
                Bytes::from_static(b"void"),
                Transport::RdmaSend,
            )
            .await;
        });
        // Nothing to assert beyond "did not panic / did not deadlock".
        assert_eq!(c.stats().sends_rdma, 1);
    }

    #[test]
    fn endpoint_drop_unbinds_port() {
        let (sim, c) = setup(2);
        {
            let _ep = c.bind(NodeId(1), 7);
        }
        // Rebinding after drop works.
        let _ep2 = c.bind(NodeId(1), 7);
        drop(sim);
    }

    #[test]
    #[should_panic(expected = "already bound")]
    fn double_bind_panics() {
        let (_sim, c) = setup(2);
        let _a = c.bind(NodeId(1), 7);
        let _b = c.bind(NodeId(1), 7);
    }

    #[test]
    fn crashed_target_fails_try_verbs_then_recovers() {
        use crate::faults::{CrashWindow, FaultPlan};
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        c.install_faults(FaultPlan::from_parts(
            0,
            vec![CrashWindow {
                node: NodeId(1),
                start: 0,
                end: ms(10),
            }],
            vec![],
            vec![],
            0.0,
        ));
        let cc = c.clone();
        let h = sim.handle();
        let (early_read, early_cas, late) = sim.run_to(async move {
            let early_read = cc.try_rdma_read(NodeId(0), addr, 8).await;
            let early_cas = cc.try_atomic_cas(NodeId(0), addr, 0, 7).await;
            h.sleep_until(ms(10)).await;
            let late = cc.try_rdma_read(NodeId(0), addr, 8).await;
            (early_read, early_cas, late)
        });
        assert_eq!(
            early_read,
            Err(crate::faults::FabricError::Unreachable(NodeId(1)))
        );
        assert!(early_cas.is_err());
        assert!(late.is_ok());
        // The failed CAS must not have touched memory.
        assert_eq!(c.region(NodeId(1), r).read_u64(0), 0);
        assert!(c.fault_stats().unreachable_ops >= 2);
    }

    #[test]
    fn infallible_read_rides_out_a_crash_window() {
        use crate::faults::{CrashWindow, FaultPlan};
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        c.region(NodeId(1), r).write(0, b"fedcba98");
        c.install_faults(FaultPlan::from_parts(
            0,
            vec![CrashWindow {
                node: NodeId(1),
                start: 0,
                end: ms(5),
            }],
            vec![],
            vec![],
            0.0,
        ));
        let cc = c.clone();
        let h = sim.handle();
        let (data, t) = sim.run_to(async move {
            let data = cc.rdma_read(NodeId(0), addr, 8).await;
            (data, h.now())
        });
        assert_eq!(&data[..], b"fedcba98");
        // The read only completes once the node is back up.
        assert!(t >= ms(5), "completed at {t} inside the crash window");
        assert!(c.fault_stats().retries > 0);
    }

    #[test]
    fn unreliable_send_vanishes_on_drop_but_reliable_gets_through() {
        use crate::faults::FaultPlan;
        let (sim, c) = setup(2);
        // 50% drop rate: over 20 messages some attempts are dropped, yet
        // every reliable send must still deliver exactly once.
        c.install_faults(FaultPlan::from_parts(3, vec![], vec![], vec![], 0.5));
        let mut ep = c.bind(NodeId(1), 7);
        let cc = c.clone();
        sim.spawn(async move {
            for i in 0..20u8 {
                cc.send_reliable(
                    NodeId(0),
                    NodeId(1),
                    7,
                    Bytes::from(vec![i]),
                    Transport::RdmaSend,
                )
                .await
                .expect("reliable send failed");
            }
        });
        let got = sim.run_to(async move {
            let mut got = Vec::new();
            for _ in 0..20 {
                got.push(ep.recv().await.data[0]);
            }
            got
        });
        assert_eq!(got, (0..20u8).collect::<Vec<_>>());
        let fs = c.fault_stats();
        assert!(fs.dropped_msgs > 0, "no drop was exercised");
        assert_eq!(fs.retries, fs.dropped_msgs);
    }

    #[test]
    fn latency_window_inflates_read_time() {
        use crate::faults::{FaultPlan, LatencyWindow};
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        c.install_faults(FaultPlan::from_parts(
            0,
            vec![],
            vec![LatencyWindow {
                start: 0,
                end: ms(1),
                factor_milli: 3000,
            }],
            vec![],
            0.0,
        ));
        let cc = c.clone();
        let h = sim.handle();
        let (t_in, t_out) = sim.run_to(async move {
            let s0 = h.now();
            cc.rdma_read(NodeId(0), addr, 1).await;
            let t_in = h.now() - s0;
            h.sleep_until(ms(1)).await;
            let s1 = h.now();
            cc.rdma_read(NodeId(0), addr, 1).await;
            (t_in, h.now() - s1)
        });
        let m = FabricModel::calibrated_2007();
        let base = m.post_overhead_ns + m.rdma_read_base_ns + 2;
        assert_eq!(t_out, base);
        // 3x factor on every wire segment (integer division truncates).
        assert!(
            t_in >= base * 3 - 3 && t_in <= base * 3,
            "t_in={t_in} base={base}"
        );
    }

    #[test]
    fn stall_window_hogs_target_cpu() {
        use crate::faults::{FaultPlan, StallWindow};
        let (sim, c) = setup(2);
        c.install_faults(FaultPlan::from_parts(
            0,
            vec![],
            vec![],
            vec![StallWindow {
                node: NodeId(1),
                start: us(10),
                dur: ms(3),
            }],
            0.0,
        ));
        sim.run();
        assert_eq!(c.cpu(NodeId(1)).snapshot().busy_ns, ms(3));
        assert_eq!(c.cpu(NodeId(0)).snapshot().busy_ns, 0);
    }

    #[test]
    fn issuing_from_a_crashed_node_fails_too() {
        use crate::faults::{CrashWindow, FaultPlan};
        let (sim, c) = setup(2);
        let r = c.register(NodeId(1), 64);
        let addr = RemoteAddr {
            node: NodeId(1),
            region: r,
            offset: 0,
        };
        c.install_faults(FaultPlan::from_parts(
            0,
            vec![CrashWindow {
                node: NodeId(0),
                start: 0,
                end: ms(1),
            }],
            vec![],
            vec![],
            0.0,
        ));
        let cc = c.clone();
        let res = sim.run_to(async move { cc.try_rdma_write(NodeId(0), addr, b"x").await });
        assert_eq!(res, Err(crate::faults::FabricError::Unreachable(NodeId(0))));
    }

    #[test]
    fn tracing_records_verbs_without_changing_timing() {
        use dc_trace::TraceMode;
        let run = |traced: bool| {
            let (sim, c) = setup(2);
            if traced {
                c.tracer().enable(TraceMode::Full);
            }
            let r = c.register(NodeId(1), 64);
            let addr = RemoteAddr {
                node: NodeId(1),
                region: r,
                offset: 0,
            };
            let cc = c.clone();
            let h = sim.handle();
            let t = sim.run_to(async move {
                cc.rdma_write(NodeId(0), addr, b"abc").await;
                cc.rdma_read(NodeId(0), addr, 3).await;
                h.now()
            });
            (t, c)
        };
        let (t_off, _) = run(false);
        let (t_on, c) = run(true);
        assert_eq!(t_off, t_on, "enabling tracing must not change the schedule");
        let names: Vec<_> = c.tracer().events().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["verb.write", "verb.read"]);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("fabric.verbs.read"), 1);
        assert_eq!(snap.counter("fabric.verbs.write"), 1);
        assert_eq!(snap.counter("fabric.bytes.written"), 3);
    }

    #[test]
    fn fault_metrics_mirror_fault_stats() {
        use crate::faults::FaultPlan;
        let (sim, c) = setup(2);
        c.install_faults(FaultPlan::from_parts(3, vec![], vec![], vec![], 0.5));
        let mut ep = c.bind(NodeId(1), 7);
        let cc = c.clone();
        sim.spawn(async move {
            for i in 0..10u8 {
                cc.send_reliable(
                    NodeId(0),
                    NodeId(1),
                    7,
                    Bytes::from(vec![i]),
                    Transport::RdmaSend,
                )
                .await
                .unwrap();
            }
        });
        sim.run_to(async move {
            for _ in 0..10 {
                ep.recv().await;
            }
        });
        let fs = c.fault_stats();
        let snap = c.metrics().snapshot();
        assert!(fs.dropped_msgs > 0);
        assert_eq!(snap.counter("fault.dropped_msgs"), fs.dropped_msgs);
        assert_eq!(snap.counter("fault.retries"), fs.retries);
        assert_eq!(snap.counter("fabric.delivered"), 10);
    }

    #[test]
    fn kstat_is_remotely_readable() {
        let (sim, c) = setup(2);
        let cpu = c.cpu(NodeId(1));
        cpu.thread_started();
        cpu.thread_started();
        let addr = c.kstat_addr(NodeId(1));
        let cc = c.clone();
        let stats = sim.run_to(async move {
            let raw = cc.rdma_read(NodeId(0), addr, KSTAT_REGION_LEN).await;
            crate::kstat::KernelStats::decode(&raw)
        });
        assert_eq!(stats.app_threads, 2);
    }
}
