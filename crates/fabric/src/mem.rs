//! Registered memory regions and remote addressing.
//!
//! A node registers a region of memory with its NIC and hands out a
//! [`RemoteAddr`] (node, region, offset) — the analogue of an
//! (rkey, virtual address) pair. One-sided verbs and remote atomics operate
//! on these addresses without the target CPU's involvement.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;

/// Identifier of a registered memory region within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// A remote memory location: the target of one-sided verbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteAddr {
    /// Node owning the registered region.
    pub node: crate::cluster::NodeId,
    /// Region within that node.
    pub region: RegionId,
    /// Byte offset within the region.
    pub offset: usize,
}

impl RemoteAddr {
    /// The address `delta` bytes further into the same region.
    #[inline]
    pub fn at(self, delta: usize) -> RemoteAddr {
        RemoteAddr {
            offset: self.offset + delta,
            ..self
        }
    }
}

/// Backing storage of one registered region. Shared (`Rc`) so that node-local
/// writers — e.g. the CPU model updating kernel statistics — can update it
/// without going through the region table.
#[derive(Clone)]
pub struct RegionData {
    data: Rc<RefCell<Vec<u8>>>,
}

impl RegionData {
    /// Allocate a zeroed region of `len` bytes.
    pub fn new(len: usize) -> Self {
        RegionData {
            data: Rc::new(RefCell::new(vec![0; len])),
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// Whether the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy `buf.len()` bytes into the region at `offset`.
    ///
    /// Panics if the write overruns the region (an rkey violation — always a
    /// bug in protocol code).
    pub fn write(&self, offset: usize, buf: &[u8]) {
        let mut d = self.data.borrow_mut();
        let end = offset
            .checked_add(buf.len())
            .expect("region write offset overflow");
        assert!(
            end <= d.len(),
            "region write out of bounds: {}..{} > {}",
            offset,
            end,
            d.len()
        );
        d[offset..end].copy_from_slice(buf);
    }

    /// Copy `len` bytes out of the region at `offset`.
    pub fn read(&self, offset: usize, len: usize) -> Vec<u8> {
        let d = self.data.borrow();
        let end = offset
            .checked_add(len)
            .expect("region read offset overflow");
        assert!(
            end <= d.len(),
            "region read out of bounds: {}..{} > {}",
            offset,
            end,
            d.len()
        );
        d[offset..end].to_vec()
    }

    /// Snapshot `len` bytes at `offset` into a [`Bytes`] payload —
    /// allocation-free for short reads (lock words, atomics results), one
    /// copy either way. This is the verb-path variant of [`RegionData::read`].
    pub fn read_bytes(&self, offset: usize, len: usize) -> Bytes {
        let d = self.data.borrow();
        let end = offset
            .checked_add(len)
            .expect("region read offset overflow");
        assert!(
            end <= d.len(),
            "region read out of bounds: {}..{} > {}",
            offset,
            end,
            d.len()
        );
        Bytes::copy_from_slice(&d[offset..end])
    }

    /// Read a little-endian u64 at an 8-byte-aligned `offset`.
    pub fn read_u64(&self, offset: usize) -> u64 {
        assert_eq!(offset % 8, 0, "atomic access must be 8-byte aligned");
        let d = self.data.borrow();
        let end = offset + 8;
        assert!(
            end <= d.len(),
            "region read out of bounds: {}..{} > {}",
            offset,
            end,
            d.len()
        );
        u64::from_le_bytes(d[offset..end].try_into().unwrap())
    }

    /// Write a little-endian u64 at an 8-byte-aligned `offset`.
    pub fn write_u64(&self, offset: usize, v: u64) {
        assert_eq!(offset % 8, 0, "atomic access must be 8-byte aligned");
        self.write(offset, &v.to_le_bytes());
    }

    /// NIC-side compare-and-swap on the u64 at `offset`; returns the prior
    /// value (the swap happened iff the return equals `expect`).
    pub fn cas_u64(&self, offset: usize, expect: u64, swap: u64) -> u64 {
        let old = self.read_u64(offset);
        if old == expect {
            self.write_u64(offset, swap);
        }
        old
    }

    /// NIC-side fetch-and-add (wrapping) on the u64 at `offset`; returns the
    /// prior value.
    pub fn faa_u64(&self, offset: usize, add: u64) -> u64 {
        let old = self.read_u64(offset);
        self.write_u64(offset, old.wrapping_add(add));
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let r = RegionData::new(64);
        r.write(8, b"abcdef");
        assert_eq!(r.read(8, 6), b"abcdef");
        assert_eq!(r.read(0, 8), vec![0; 8]); // untouched prefix stays zero
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn write_past_end_panics() {
        let r = RegionData::new(16);
        r.write(10, &[0; 8]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_past_end_panics() {
        let r = RegionData::new(16);
        r.read(0, 17);
    }

    #[test]
    fn read_bytes_matches_read() {
        let r = RegionData::new(64);
        r.write(8, b"abcdef");
        assert_eq!(&r.read_bytes(8, 6)[..], &r.read(8, 6)[..]);
        assert_eq!(r.read_bytes(0, 64).len(), 64); // beyond the inline cap
        assert_eq!(&r.read_bytes(0, 64)[..], &r.read(0, 64)[..]);
    }

    #[test]
    fn u64_round_trip_little_endian() {
        let r = RegionData::new(32);
        r.write_u64(16, 0x0102_0304_0506_0708);
        assert_eq!(r.read_u64(16), 0x0102_0304_0506_0708);
        assert_eq!(r.read(16, 1), vec![0x08]); // LE lowest byte first
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn unaligned_atomic_panics() {
        let r = RegionData::new(32);
        r.read_u64(4);
    }

    #[test]
    fn cas_succeeds_only_on_match() {
        let r = RegionData::new(8);
        assert_eq!(r.cas_u64(0, 0, 42), 0); // matched: swapped in 42
        assert_eq!(r.read_u64(0), 42);
        assert_eq!(r.cas_u64(0, 0, 99), 42); // mismatched: unchanged
        assert_eq!(r.read_u64(0), 42);
        assert_eq!(r.cas_u64(0, 42, 7), 42); // matched again
        assert_eq!(r.read_u64(0), 7);
    }

    #[test]
    fn faa_wraps() {
        let r = RegionData::new(8);
        r.write_u64(0, u64::MAX);
        assert_eq!(r.faa_u64(0, 2), u64::MAX);
        assert_eq!(r.read_u64(0), 1);
    }

    #[test]
    fn remote_addr_offsets_compose() {
        let a = RemoteAddr {
            node: crate::cluster::NodeId(3),
            region: RegionId(1),
            offset: 100,
        };
        let b = a.at(28);
        assert_eq!(b.offset, 128);
        assert_eq!(b.node, a.node);
        assert_eq!(b.region, a.region);
    }

    #[test]
    fn shared_handles_alias_storage() {
        let r = RegionData::new(8);
        let alias = r.clone();
        alias.write_u64(0, 5);
        assert_eq!(r.read_u64(0), 5);
    }
}
