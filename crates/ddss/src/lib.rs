//! # dc-ddss — Distributed Data Sharing Substrate
//!
//! The paper's first service primitive (its §4.1, detailed in the authors'
//! HiPC'06 DDSS paper): a low-overhead soft shared state for cluster
//! services, built on one-sided RDMA and remote atomics. Services allocate
//! named shared segments with the coherence model they need — a load map
//! can tolerate delta/temporal staleness, a cache directory wants versioned
//! reads, reconfiguration state wants strict coherence — and then `get`/
//! `put` them without involving the home node's CPU.
//!
//! Components, mirroring the paper's Figure 2:
//!
//! * **IPC management** — [`ipc::LocalNamespace`], sharing segment keys
//!   between processes on one node.
//! * **Memory management** — [`alloc::FreeListAllocator`] carving each
//!   node's registered heap.
//! * **Data placement** — the `home` argument of
//!   [`substrate::DdssClient::allocate`]: local or any remote node.
//! * **Locking services** — [`substrate::DdssClient::lock`]/`unlock`,
//!   CAS-based per-segment locks.
//! * **Coherency & consistency maintenance** — [`coherence::Coherence`]
//!   models (null, read, write, strict, version, delta, temporal) and
//!   versioned compare-and-put.
//!
//! ```
//! use dc_sim::Sim;
//! use dc_fabric::{Cluster, FabricModel, NodeId};
//! use dc_ddss::{Coherence, Ddss, DdssConfig};
//!
//! let sim = Sim::new();
//! let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
//! let ddss = Ddss::new(&cluster, DdssConfig::default(), &[NodeId(0), NodeId(1)]);
//! let client = ddss.client(NodeId(0));
//! let value = sim.run_to(async move {
//!     let key = client.allocate(NodeId(1), 64, Coherence::Version).await.unwrap();
//!     client.put(&key, b"shared state").await;
//!     client.get(&key).await
//! });
//! assert_eq!(&value[..12], b"shared state");
//! ```

pub mod aggregator;
pub mod alloc;
pub mod coherence;
pub mod ctrl;
pub mod ipc;
pub mod substrate;

pub use aggregator::{GlobalMemoryAggregator, Placement};
pub use coherence::Coherence;
pub use ipc::LocalNamespace;
pub use substrate::{Ddss, DdssClient, DdssConfig, SharedKey, BLOCK_HDR};
