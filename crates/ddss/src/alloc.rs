//! First-fit free-list allocator for a node's shared heap region.
//!
//! The DDSS memory-management module carves each participating node's
//! registered heap into allocations. The allocator runs inside the node's
//! DDSS daemon (allocation is a control-plane RPC; the data plane is pure
//! one-sided RDMA), so a plain single-owner structure suffices.

/// A first-fit allocator with free-block coalescing over `[0, capacity)`.
#[derive(Debug, Clone)]
pub struct FreeListAllocator {
    capacity: usize,
    /// Sorted, disjoint, non-adjacent free ranges `(offset, len)`.
    free: Vec<(usize, usize)>,
    in_use: usize,
}

impl FreeListAllocator {
    /// An allocator over `capacity` bytes, all initially free.
    pub fn new(capacity: usize) -> Self {
        FreeListAllocator {
            capacity,
            free: if capacity > 0 {
                vec![(0, capacity)]
            } else {
                Vec::new()
            },
            in_use: 0,
        }
    }

    /// Total managed bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Bytes currently free (sum over fragments).
    pub fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    /// Allocate `len` bytes (first fit, 8-byte aligned sizes). Returns the
    /// offset, or `None` if no fragment fits.
    pub fn allocate(&mut self, len: usize) -> Option<usize> {
        assert!(len > 0, "zero-length allocation");
        let len = round8(len);
        let pos = self.free.iter().position(|&(_, flen)| flen >= len)?;
        let (off, flen) = self.free[pos];
        if flen == len {
            self.free.remove(pos);
        } else {
            self.free[pos] = (off + len, flen - len);
        }
        self.in_use += len;
        Some(off)
    }

    /// Free a block previously returned by [`allocate`](Self::allocate) with
    /// the same `len`. Coalesces with adjacent free ranges.
    pub fn free(&mut self, off: usize, len: usize) {
        assert!(len > 0);
        let len = round8(len);
        assert!(off + len <= self.capacity, "free out of bounds");
        // Find insertion point by offset.
        let idx = self.free.partition_point(|&(o, _)| o < off);
        // Guard against double frees / overlaps.
        if idx > 0 {
            let (po, pl) = self.free[idx - 1];
            assert!(po + pl <= off, "free overlaps previous free range");
        }
        if idx < self.free.len() {
            let (no, _) = self.free[idx];
            assert!(off + len <= no, "free overlaps next free range");
        }
        self.free.insert(idx, (off, len));
        self.in_use -= len;
        // Coalesce with next, then previous.
        if idx + 1 < self.free.len() && self.free[idx].0 + self.free[idx].1 == self.free[idx + 1].0
        {
            let (_, nl) = self.free.remove(idx + 1);
            self.free[idx].1 += nl;
        }
        if idx > 0 && self.free[idx - 1].0 + self.free[idx - 1].1 == self.free[idx].0 {
            let (_, l) = self.free.remove(idx);
            self.free[idx - 1].1 += l;
        }
    }

    /// Number of free fragments (fragmentation indicator).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

#[inline]
fn round8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_first_fit_and_tracks_usage() {
        let mut a = FreeListAllocator::new(1024);
        let x = a.allocate(100).unwrap();
        let y = a.allocate(200).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 104); // 100 rounded to 104
        assert_eq!(a.in_use(), 104 + 200);
        assert_eq!(a.available(), 1024 - 304);
    }

    #[test]
    fn exhausts_and_recovers() {
        let mut a = FreeListAllocator::new(256);
        let x = a.allocate(256).unwrap();
        assert!(a.allocate(8).is_none());
        a.free(x, 256);
        assert_eq!(a.available(), 256);
        assert!(a.allocate(8).is_some());
    }

    #[test]
    fn coalesces_adjacent_frees() {
        let mut a = FreeListAllocator::new(300);
        let x = a.allocate(96).unwrap();
        let y = a.allocate(96).unwrap();
        let z = a.allocate(96).unwrap();
        a.free(x, 96);
        a.free(z, 96);
        // Freed head, plus freed z merged with the trailing 12-byte remnant.
        assert_eq!(a.fragments(), 2);
        a.free(y, 96);
        assert_eq!(a.fragments(), 1); // everything merged back
        assert_eq!(a.available(), 300);
    }

    #[test]
    fn reuses_freed_holes_first_fit() {
        let mut a = FreeListAllocator::new(1024);
        let x = a.allocate(128).unwrap();
        let _y = a.allocate(128).unwrap();
        a.free(x, 128);
        // A small allocation lands in the freed head hole.
        assert_eq!(a.allocate(64).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn double_free_panics() {
        let mut a = FreeListAllocator::new(256);
        let x = a.allocate(64).unwrap();
        a.free(x, 64);
        a.free(x, 64);
    }

    #[test]
    fn zero_capacity_allocator_rejects_everything() {
        let mut a = FreeListAllocator::new(0);
        assert!(a.allocate(8).is_none());
    }

    #[test]
    fn sizes_round_to_eight() {
        let mut a = FreeListAllocator::new(64);
        let x = a.allocate(1).unwrap();
        let y = a.allocate(1).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 8);
        a.free(x, 1);
        a.free(y, 1);
        assert_eq!(a.available(), 64);
        assert_eq!(a.fragments(), 1);
    }
}
