//! DDSS control-plane messages.
//!
//! These ride the legacy framing (`dc_svc::call_legacy`): the request body
//! follows an `[op][reply-port]` prefix, the response is the bare encoded
//! reply. Byte layouts are frozen — message length feeds the fabric's
//! transmission-time model, so changing an encoding changes golden-baseline
//! timings.

use dc_svc::{Reader, Wire, Writer};

use crate::coherence::Coherence;

/// Opcode of an allocation request.
pub const OP_ALLOC: u8 = 1;
/// Opcode of a free request.
pub const OP_FREE: u8 = 2;

/// Ask a home daemon for `len` bytes under a coherence model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocReq {
    /// Payload bytes requested (excluding the block header).
    pub len: u64,
    /// Coherence model the segment will be accessed under.
    pub coherence: Coherence,
}

impl Wire for AllocReq {
    fn encode_into(&self, out: &mut Vec<u8>) {
        Writer::new(out).u64(self.len).u8(self.coherence.to_u8());
    }

    fn decode(bytes: &[u8]) -> Option<AllocReq> {
        let mut r = Reader::new(bytes);
        let len = r.u64()?;
        let coherence = Coherence::from_u8(r.u8()?);
        r.finish(AllocReq { len, coherence })
    }
}

/// Home daemon's answer: the new segment's id and block offset, or `None`
/// when the heap is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocResp {
    /// `(key id, block offset)` on success.
    pub key: Option<(u64, u64)>,
}

impl Wire for AllocResp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self.key {
            Some((id, block_off)) => {
                Writer::new(out).u8(1).u64(id).u64(block_off);
            }
            None => {
                Writer::new(out).u8(0);
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<AllocResp> {
        let mut r = Reader::new(bytes);
        match r.u8()? {
            0 => r.finish(AllocResp { key: None }),
            1 => {
                let id = r.u64()?;
                let block_off = r.u64()?;
                r.finish(AllocResp {
                    key: Some((id, block_off)),
                })
            }
            _ => None,
        }
    }
}

/// Release a segment by key id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeReq {
    /// The segment's key id.
    pub id: u64,
}

impl Wire for FreeReq {
    fn encode_into(&self, out: &mut Vec<u8>) {
        Writer::new(out).u64(self.id);
    }

    fn decode(bytes: &[u8]) -> Option<FreeReq> {
        let mut r = Reader::new(bytes);
        let id = r.u64()?;
        r.finish(FreeReq { id })
    }
}

/// Whether the free found a live segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreeResp {
    /// False when the segment was already freed.
    pub ok: bool,
}

impl Wire for FreeResp {
    fn encode_into(&self, out: &mut Vec<u8>) {
        Writer::new(out).u8(u8::from(self.ok));
    }

    fn decode(bytes: &[u8]) -> Option<FreeResp> {
        let mut r = Reader::new(bytes);
        let ok = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        r.finish(FreeResp { ok })
    }
}
