//! Coherence models supported by the distributed data sharing substrate.
//!
//! The paper's DDSS supports six models plus temporal client caching; each
//! model is realized as a distinct sequence of one-sided verbs (see
//! `substrate.rs` for the protocols). The enum order matches the legend of
//! the paper's Figure 3a.

use std::fmt;

/// How reads and writes of a shared allocation are coordinated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Coherence {
    /// No coordination: `put` is a bare RDMA write, `get` a bare read.
    /// Readers may observe torn intermediate states.
    Null,
    /// Read coherence: writers publish a version *after* the data lands, so
    /// a reader that validates the version never consumes a torn value.
    Read,
    /// Write coherence: writers are additionally serialized through a
    /// fetch-and-add sequencer; last-writer-wins is well defined.
    Write,
    /// Strict coherence: every access (read or write) holds the allocation's
    /// lock — linearizable, and the most expensive model.
    Strict,
    /// Versioned: each write bumps a version with fetch-and-add; readers
    /// validate the version before and after the data read and retry on a
    /// concurrent update.
    Version,
    /// Delta: writers append logical deltas (read current version, write the
    /// delta record, bump the version); readers reconstruct base + deltas.
    Delta,
    /// Temporal: clients may serve reads from a local copy younger than the
    /// configured TTL; otherwise refresh with a read.
    Temporal,
}

impl Coherence {
    /// All models, in the paper's Figure 3a legend order, with `Temporal`
    /// appended (Figure 3a omits it because a warm temporal `get` has no
    /// network component to plot).
    pub const ALL: [Coherence; 7] = [
        Coherence::Null,
        Coherence::Read,
        Coherence::Write,
        Coherence::Strict,
        Coherence::Version,
        Coherence::Delta,
        Coherence::Temporal,
    ];

    /// The six models plotted in Figure 3a.
    pub const FIG3A: [Coherence; 6] = [
        Coherence::Null,
        Coherence::Read,
        Coherence::Write,
        Coherence::Strict,
        Coherence::Version,
        Coherence::Delta,
    ];

    /// Stable wire encoding (for the allocation RPC).
    /// Lowercase name, for trace args and bench table legends.
    pub fn label(self) -> &'static str {
        match self {
            Coherence::Null => "null",
            Coherence::Read => "read",
            Coherence::Write => "write",
            Coherence::Strict => "strict",
            Coherence::Version => "version",
            Coherence::Delta => "delta",
            Coherence::Temporal => "temporal",
        }
    }

    pub fn to_u8(self) -> u8 {
        match self {
            Coherence::Null => 0,
            Coherence::Read => 1,
            Coherence::Write => 2,
            Coherence::Strict => 3,
            Coherence::Version => 4,
            Coherence::Delta => 5,
            Coherence::Temporal => 6,
        }
    }

    /// Decode the wire encoding.
    pub fn from_u8(v: u8) -> Coherence {
        match v {
            0 => Coherence::Null,
            1 => Coherence::Read,
            2 => Coherence::Write,
            3 => Coherence::Strict,
            4 => Coherence::Version,
            5 => Coherence::Delta,
            6 => Coherence::Temporal,
            _ => panic!("invalid coherence encoding {v}"),
        }
    }
}

impl fmt::Display for Coherence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Coherence::Null => "Null",
            Coherence::Read => "Read",
            Coherence::Write => "Write",
            Coherence::Strict => "Strict",
            Coherence::Version => "Version",
            Coherence::Delta => "Delta",
            Coherence::Temporal => "Temporal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encoding_round_trips() {
        for c in Coherence::ALL {
            assert_eq!(Coherence::from_u8(c.to_u8()), c);
        }
    }

    #[test]
    #[should_panic(expected = "invalid coherence")]
    fn bad_encoding_panics() {
        Coherence::from_u8(99);
    }

    #[test]
    fn display_labels_are_distinct() {
        let labels: std::collections::HashSet<String> =
            Coherence::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(labels.len(), Coherence::ALL.len());
    }
}
