//! IPC management: virtualizing the shared state across processes on a node.
//!
//! Multiple processes on one node (e.g. Apache workers) share DDSS segments
//! by name. The namespace is node-local shared memory; publishing or looking
//! up a name costs a small IPC overhead but no network traffic.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dc_fabric::NodeId;
use dc_sim::{SimHandle, SimTime};

use crate::substrate::SharedKey;

/// Cost of one namespace operation (shared-memory segment lookup + copy of
/// the key descriptor).
pub const IPC_OP_NS: SimTime = 300;

/// A node-local name → [`SharedKey`] registry shared by all processes on
/// that node. Clone to hand to another "process".
#[derive(Clone)]
pub struct LocalNamespace {
    sim: SimHandle,
    node: NodeId,
    map: Rc<RefCell<HashMap<String, SharedKey>>>,
}

impl LocalNamespace {
    /// Create the namespace for `node`.
    pub fn new(sim: SimHandle, node: NodeId) -> Self {
        LocalNamespace {
            sim,
            node,
            map: Rc::default(),
        }
    }

    /// The node this namespace belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Publish `key` under `name`; returns the previously published key for
    /// that name, if any.
    pub async fn publish(&self, name: &str, key: SharedKey) -> Option<SharedKey> {
        self.sim.sleep(IPC_OP_NS).await;
        self.map.borrow_mut().insert(name.to_owned(), key)
    }

    /// Look up a published key.
    pub async fn lookup(&self, name: &str) -> Option<SharedKey> {
        self.sim.sleep(IPC_OP_NS).await;
        self.map.borrow().get(name).copied()
    }

    /// Remove a published name.
    pub async fn unpublish(&self, name: &str) -> Option<SharedKey> {
        self.sim.sleep(IPC_OP_NS).await;
        self.map.borrow_mut().remove(name)
    }

    /// Number of published names.
    pub fn len(&self) -> usize {
        self.map.borrow().len()
    }

    /// Whether no names are published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coherence::Coherence;
    use dc_fabric::RegionId;
    use dc_sim::Sim;

    fn dummy_key(id: u64) -> SharedKey {
        SharedKey {
            id,
            home: NodeId(0),
            region: RegionId(1),
            block_off: 0,
            len: 64,
            coherence: Coherence::Null,
        }
    }

    #[test]
    fn publish_lookup_unpublish_cycle() {
        let sim = Sim::new();
        let ns = LocalNamespace::new(sim.handle(), NodeId(0));
        let ns2 = ns.clone(); // a second "process"
        sim.run_to(async move {
            assert!(ns.is_empty());
            assert!(ns.publish("cache-dir", dummy_key(7)).await.is_none());
            let found = ns2.lookup("cache-dir").await.unwrap();
            assert_eq!(found.id, 7);
            assert!(ns2.lookup("absent").await.is_none());
            assert_eq!(ns.unpublish("cache-dir").await.unwrap().id, 7);
            assert!(ns.lookup("cache-dir").await.is_none());
        });
    }

    #[test]
    fn republish_returns_previous() {
        let sim = Sim::new();
        let ns = LocalNamespace::new(sim.handle(), NodeId(0));
        sim.run_to(async move {
            ns.publish("k", dummy_key(1)).await;
            let prev = ns.publish("k", dummy_key(2)).await.unwrap();
            assert_eq!(prev.id, 1);
            assert_eq!(ns.lookup("k").await.unwrap().id, 2);
        });
    }

    #[test]
    fn operations_cost_ipc_overhead_only() {
        let sim = Sim::new();
        let ns = LocalNamespace::new(sim.handle(), NodeId(0));
        let h = sim.handle();
        let t = sim.run_to(async move {
            ns.publish("a", dummy_key(1)).await;
            ns.lookup("a").await;
            h.now()
        });
        assert_eq!(t, 2 * IPC_OP_NS);
    }
}
