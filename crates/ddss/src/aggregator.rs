//! Global memory aggregator — the remaining primitive of the framework's
//! middle layer (Figure 1 of the paper).
//!
//! Aggregates the DDSS heaps of all participating nodes into one logical
//! allocation space: callers ask for memory, the aggregator places it on
//! the node with the most free capacity (or closest preferred fit) and
//! hands back an ordinary [`SharedKey`]. Free-capacity bookkeeping is soft
//! shared state — a registered table of per-node free bytes that any client
//! can read with one RDMA read and that home daemons keep current — so
//! placement decisions cost one read, not a round of RPCs.

use dc_fabric::{Cluster, NodeId, RegionId, RemoteAddr};

use crate::coherence::Coherence;
use crate::substrate::{Ddss, DdssClient, SharedKey};

/// Placement policy for aggregated allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// The node advertising the most free bytes.
    MostFree,
    /// The caller's own node if it fits, else the most free.
    LocalFirst,
    /// Spread: rotate across nodes that fit (deterministic round-robin).
    Spread,
}

/// The aggregator: a placement layer over a [`Ddss`] instance.
pub struct GlobalMemoryAggregator {
    ddss: Ddss,
    cluster: Cluster,
    /// Registered free-space table on the table home: one u64 per node slot.
    table_home: NodeId,
    table_region: RegionId,
    nodes: Vec<NodeId>,
    rr_next: std::cell::Cell<usize>,
}

impl GlobalMemoryAggregator {
    /// Build over `ddss`, publishing the free-space table on `table_home`.
    /// `heap_bytes` is each node's DDSS heap capacity (the starting
    /// advertisement).
    pub fn new(
        cluster: &Cluster,
        ddss: &Ddss,
        table_home: NodeId,
        nodes: &[NodeId],
        heap_bytes: usize,
    ) -> GlobalMemoryAggregator {
        let table_region = cluster.register(table_home, nodes.len() * 8);
        let table = cluster.region(table_home, table_region);
        for i in 0..nodes.len() {
            table.write_u64(i * 8, heap_bytes as u64);
        }
        GlobalMemoryAggregator {
            ddss: ddss.clone(),
            cluster: cluster.clone(),
            table_home,
            table_region,
            nodes: nodes.to_vec(),
            rr_next: std::cell::Cell::new(0),
        }
    }

    /// The substrate this aggregator places into.
    pub fn ddss(&self) -> &Ddss {
        &self.ddss
    }

    fn table_addr(&self) -> RemoteAddr {
        RemoteAddr {
            node: self.table_home,
            region: self.table_region,
            offset: 0,
        }
    }

    /// Read the advertised free bytes of every node (one RDMA read).
    pub async fn free_map(&self, reader: NodeId) -> Vec<(NodeId, u64)> {
        let raw = self
            .cluster
            .rdma_read(reader, self.table_addr(), self.nodes.len() * 8)
            .await;
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                (
                    n,
                    u64::from_le_bytes(raw[i * 8..(i + 1) * 8].try_into().unwrap()),
                )
            })
            .collect()
    }

    /// Total advertised free bytes across the cluster.
    pub async fn aggregate_free(&self, reader: NodeId) -> u64 {
        self.free_map(reader).await.iter().map(|&(_, f)| f).sum()
    }

    /// Allocate `len` bytes somewhere in the aggregate space.
    ///
    /// Tries the policy's preferred order; each candidate costs the normal
    /// DDSS allocation RPC. Returns `None` only when no advertised node can
    /// hold the request. The free table is soft state: a stale
    /// advertisement just means a failed candidate and a move to the next.
    pub async fn allocate(
        &self,
        client: &DdssClient,
        len: usize,
        coherence: Coherence,
        policy: Placement,
    ) -> Option<SharedKey> {
        let need = (len + crate::substrate::BLOCK_HDR) as u64;
        let map = self.free_map(client.node()).await;
        let mut candidates: Vec<(NodeId, u64)> =
            map.into_iter().filter(|&(_, free)| free >= need).collect();
        match policy {
            Placement::MostFree => {
                candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            Placement::LocalFirst => {
                candidates.sort_by(|a, b| {
                    let a_local = a.0 == client.node();
                    let b_local = b.0 == client.node();
                    b_local
                        .cmp(&a_local)
                        .then(b.1.cmp(&a.1))
                        .then(a.0.cmp(&b.0))
                });
            }
            Placement::Spread => {
                if !candidates.is_empty() {
                    candidates.sort_by_key(|c| c.0);
                    let rot = self.rr_next.get() % candidates.len();
                    self.rr_next.set(self.rr_next.get() + 1);
                    candidates.rotate_left(rot);
                }
            }
        }
        for (node, _) in candidates {
            if let Some(key) = client.allocate(node, len, coherence).await {
                self.debit(client.node(), node, need).await;
                return Some(key);
            }
        }
        None
    }

    /// Free an aggregated allocation, restoring its advertisement.
    pub async fn free(&self, client: &DdssClient, key: SharedKey) -> bool {
        let need = (key.len + crate::substrate::BLOCK_HDR) as u64;
        let home = key.home;
        let ok = client.free(key).await;
        if ok {
            self.credit(client.node(), home, need).await;
        }
        ok
    }

    async fn debit(&self, from: NodeId, node: NodeId, amount: u64) {
        self.adjust(from, node, amount.wrapping_neg()).await;
    }

    async fn credit(&self, from: NodeId, node: NodeId, amount: u64) {
        self.adjust(from, node, amount).await;
    }

    async fn adjust(&self, from: NodeId, node: NodeId, delta: u64) {
        let slot = self
            .nodes
            .iter()
            .position(|&n| n == node)
            .expect("unknown aggregator node");
        // Fetch-and-add keeps concurrent adjustments linearizable.
        self.cluster
            .atomic_faa(from, self.table_addr().at(slot * 8), delta)
            .await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::DdssConfig;
    use dc_fabric::FabricModel;
    use dc_sim::Sim;
    use std::rc::Rc;

    fn setup(heap: usize) -> (Sim, Cluster, Ddss, Rc<GlobalMemoryAggregator>) {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 4);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let cfg = DdssConfig {
            heap_bytes: heap,
            ..DdssConfig::default()
        };
        let ddss = Ddss::new(&cluster, cfg, &nodes);
        let agg = Rc::new(GlobalMemoryAggregator::new(
            &cluster,
            &ddss,
            NodeId(0),
            &nodes,
            heap,
        ));
        (sim, cluster, ddss, agg)
    }

    #[test]
    fn aggregate_capacity_exceeds_one_node() {
        let (sim, _c, ddss, agg) = setup(4096);
        let client = ddss.client(NodeId(1));
        let keys = sim.run_to(async move {
            // Four 2 KiB segments cannot fit one 4 KiB heap (one each with
            // headers) but fit the four-node aggregate.
            let mut keys = Vec::new();
            for _ in 0..4 {
                let k = agg
                    .allocate(&client, 2048, Coherence::Null, Placement::MostFree)
                    .await
                    .expect("aggregate space exhausted too early");
                keys.push(k);
            }
            keys
        });
        // Placement used every node.
        let homes: std::collections::HashSet<NodeId> = keys.iter().map(|k| k.home).collect();
        assert_eq!(homes.len(), 4, "placement did not spread: {homes:?}");
    }

    #[test]
    fn local_first_prefers_the_caller() {
        let (sim, _c, ddss, agg) = setup(1 << 20);
        let client = ddss.client(NodeId(2));
        let key = sim.run_to(async move {
            agg.allocate(&client, 128, Coherence::Null, Placement::LocalFirst)
                .await
                .unwrap()
        });
        assert_eq!(key.home, NodeId(2));
    }

    #[test]
    fn spread_rotates_homes() {
        let (sim, _c, ddss, agg) = setup(1 << 20);
        let client = ddss.client(NodeId(0));
        let homes = sim.run_to(async move {
            let mut homes = Vec::new();
            for _ in 0..4 {
                let k = agg
                    .allocate(&client, 64, Coherence::Null, Placement::Spread)
                    .await
                    .unwrap();
                homes.push(k.home);
            }
            homes
        });
        let distinct: std::collections::HashSet<NodeId> = homes.iter().copied().collect();
        assert_eq!(distinct.len(), 4, "spread reused homes: {homes:?}");
    }

    #[test]
    fn free_restores_advertised_capacity() {
        let (sim, _c, ddss, agg) = setup(4096);
        let client = ddss.client(NodeId(1));
        let agg2 = Rc::clone(&agg);
        sim.run_to(async move {
            let before = agg2.aggregate_free(NodeId(1)).await;
            let k = agg2
                .allocate(&client, 1024, Coherence::Null, Placement::MostFree)
                .await
                .unwrap();
            let during = agg2.aggregate_free(NodeId(1)).await;
            assert!(during < before);
            assert!(agg2.free(&client, k).await);
            let after = agg2.aggregate_free(NodeId(1)).await;
            assert_eq!(after, before);
        });
    }

    #[test]
    fn exhaustion_returns_none_cleanly() {
        let (sim, _c, ddss, agg) = setup(256);
        let client = ddss.client(NodeId(1));
        sim.run_to(async move {
            // Fill everything.
            let mut held = Vec::new();
            while let Some(k) = agg
                .allocate(&client, 200, Coherence::Null, Placement::MostFree)
                .await
            {
                held.push(k);
            }
            assert!(!held.is_empty());
            assert!(agg
                .allocate(&client, 200, Coherence::Null, Placement::MostFree)
                .await
                .is_none());
        });
    }

    #[test]
    fn read_heavy_workload_uses_one_read_per_decision() {
        let (sim, c, ddss, agg) = setup(1 << 20);
        let client = ddss.client(NodeId(1));
        sim.run_to(async move {
            agg.allocate(&client, 64, Coherence::Null, Placement::MostFree)
                .await
                .unwrap();
        });
        // One table read + one FAA debit (allocation RPC is send/recv).
        let s = c.stats();
        assert_eq!(s.reads, 1, "placement should cost one table read");
        assert_eq!(s.faa, 1, "debit should be one atomic");
    }
}
