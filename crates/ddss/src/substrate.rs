//! The distributed data sharing substrate: allocation, placement, get/put
//! under the selected coherence model, locking services, and versioning.
//!
//! ## Memory layout
//!
//! Every participating node hosts a registered heap region. An allocation
//! (a *shared segment*) is a block `[lock u64][version u64][data …]` inside
//! the home node's heap; clients address it through a [`SharedKey`].
//!
//! ## Control plane vs data plane
//!
//! Allocation and free are control-plane RPCs served by a per-node DDSS
//! daemon over RDMA sends (cheap, rare). The data plane — `get`, `put`,
//! `lock`, `unlock` — is pure one-sided RDMA, which is the substrate's
//! point: sharing state without consuming the home node's CPU.
//!
//! ## Coherence protocols (verb sequences per model)
//!
//! | model    | `put`                                  | `get` |
//! |----------|----------------------------------------|-------|
//! | Null     | write data                             | read data |
//! | Read     | write data; write stamp                | read stamp+data |
//! | Write    | FAA writer-seq; write data; write stamp| read stamp+data |
//! | Strict   | lock; write data; write stamp; unlock  | lock; read; unlock |
//! | Version  | write data; FAA version                | read ver+data; re-read ver; retry if changed |
//! | Delta    | read version; write delta; FAA version | read ver+data; read ver |
//! | Temporal | write data; write stamp                | local copy if younger than TTL, else read |
//!
//! Timestamps ("stamps") are the virtual clock, which is globally monotonic
//! — the simulation's stand-in for the loosely synchronized timestamps the
//! real substrate derives from its home-node ordering.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use bytes::Bytes;
use dc_fabric::{Cluster, NodeId, RegionId, RemoteAddr, Transport};
use dc_sim::SimTime;
use dc_svc::{
    call_legacy, legacy_request, CallPolicy, Cost, Ctx, Dispatcher, Mode, Service, ServiceSpec,
    Wire,
};
use dc_trace::{Counter, HistHandle, Subsys};

use crate::alloc::FreeListAllocator;
use crate::coherence::Coherence;
use crate::ctrl::{AllocReq, AllocResp, FreeReq, FreeResp, OP_ALLOC, OP_FREE};

/// Block header: lock word + version word.
pub const BLOCK_HDR: usize = 16;

/// Tuning knobs of the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DdssConfig {
    /// Heap bytes registered per participating node.
    pub heap_bytes: usize,
    /// Software overhead charged per data-plane operation (marshalling,
    /// key lookup, IPC hand-off).
    pub op_overhead_ns: u64,
    /// CPU time the DDSS daemon spends on one control-plane request.
    pub daemon_cpu_ns: u64,
    /// Freshness window for `Temporal` reads.
    pub temporal_ttl_ns: u64,
    /// Backoff between lock CAS retries.
    pub lock_backoff_ns: u64,
    /// Budget of CAS attempts before [`DdssClient::lock`] declares the lock
    /// wedged and panics (a holder that never unlocks is a protocol bug; a
    /// bounded budget turns a silent hang into a diagnosable failure).
    pub lock_attempts: u32,
    /// Response deadline for control-plane RPCs (allocate/free). A daemon
    /// reply lost past the transport retry budget fails the operation
    /// instead of hanging the client forever.
    pub ctrl_timeout_ns: u64,
}

impl Default for DdssConfig {
    fn default() -> Self {
        DdssConfig {
            heap_bytes: 8 * 1024 * 1024,
            op_overhead_ns: 2_000,
            daemon_cpu_ns: 1_000,
            temporal_ttl_ns: 1_000_000,
            lock_backoff_ns: 12_500,
            lock_attempts: 20_000,
            ctrl_timeout_ns: 500_000_000,
        }
    }
}

/// Handle to a shared segment. `Copy`-able; safe to pass between clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SharedKey {
    /// Globally unique segment id.
    pub id: u64,
    /// Home node hosting the data.
    pub home: NodeId,
    /// Heap region on the home node.
    pub region: RegionId,
    /// Block offset (header start) within the heap region.
    pub block_off: usize,
    /// User data length in bytes.
    pub len: usize,
    /// Coherence model chosen at allocation.
    pub coherence: Coherence,
}

impl SharedKey {
    fn lock_addr(&self) -> RemoteAddr {
        RemoteAddr {
            node: self.home,
            region: self.region,
            offset: self.block_off,
        }
    }

    fn ver_addr(&self) -> RemoteAddr {
        RemoteAddr {
            node: self.home,
            region: self.region,
            offset: self.block_off + 8,
        }
    }

    fn data_addr(&self) -> RemoteAddr {
        RemoteAddr {
            node: self.home,
            region: self.region,
            offset: self.block_off + BLOCK_HDR,
        }
    }
}

struct HomeState {
    region: RegionId,
    alloc: RefCell<FreeListAllocator>,
    /// Live segments: id → (block offset, block length).
    live: RefCell<HashMap<u64, (usize, usize)>>,
    port: u16,
}

struct Inner {
    cluster: Cluster,
    cfg: DdssConfig,
    homes: RefCell<HashMap<NodeId, Rc<HomeState>>>,
    next_key: Cell<u64>,
    next_client: Cell<u64>,
    puts: Counter,
    gets: Counter,
    put_ns: HistHandle,
    get_ns: HistHandle,
}

/// The substrate. Clone to share; create clients with [`Ddss::client`].
#[derive(Clone)]
pub struct Ddss {
    inner: Rc<Inner>,
}

impl Ddss {
    /// Stand up the substrate on `nodes`: registers each node's heap and
    /// spawns its DDSS daemon.
    pub fn new(cluster: &Cluster, cfg: DdssConfig, nodes: &[NodeId]) -> Ddss {
        let metrics = cluster.metrics();
        let ddss = Ddss {
            inner: Rc::new(Inner {
                cluster: cluster.clone(),
                cfg,
                homes: RefCell::new(HashMap::new()),
                next_key: Cell::new(1),
                next_client: Cell::new(1),
                puts: metrics.counter("ddss.puts"),
                gets: metrics.counter("ddss.gets"),
                put_ns: metrics.hist("ddss.put_ns"),
                get_ns: metrics.hist("ddss.get_ns"),
            }),
        };
        for &n in nodes {
            ddss.add_home(n);
        }
        ddss
    }

    /// Add a participating node after construction.
    pub fn add_home(&self, node: NodeId) {
        let region = self.inner.cluster.register(node, self.inner.cfg.heap_bytes);
        let port = self.inner.cluster.alloc_port_for(node, "ddss.home");
        let home = Rc::new(HomeState {
            region,
            alloc: RefCell::new(FreeListAllocator::new(self.inner.cfg.heap_bytes)),
            live: RefCell::new(HashMap::new()),
            port,
        });
        let prev = self.inner.homes.borrow_mut().insert(node, Rc::clone(&home));
        assert!(prev.is_none(), "node {node:?} already participates in DDSS");
        self.spawn_daemon(node, home);
    }

    /// The participating nodes (unordered).
    pub fn homes(&self) -> Vec<NodeId> {
        self.inner.homes.borrow().keys().copied().collect()
    }

    /// Create a client handle bound to `node` (the node the calling process
    /// runs on — placement and locality are computed relative to it).
    pub fn client(&self, node: NodeId) -> DdssClient {
        let id = self.inner.next_client.get();
        self.inner.next_client.set(id + 1);
        DdssClient {
            ddss: self.clone(),
            node,
            // Lock token must be nonzero and unique per client.
            token: id,
            temporal: RefCell::new(HashMap::new()),
        }
    }

    fn home(&self, node: NodeId) -> Rc<HomeState> {
        Rc::clone(
            self.inner
                .homes
                .borrow()
                .get(&node)
                .unwrap_or_else(|| panic!("{node:?} does not participate in DDSS")),
        )
    }

    /// Allocate directly in the home's daemon state (shared-process
    /// shortcut used by the daemon itself and by local clients).
    fn alloc_local(&self, node: NodeId, len: usize, coherence: Coherence) -> Option<SharedKey> {
        let home = self.home(node);
        let block_len = BLOCK_HDR + len;
        let off = home.alloc.borrow_mut().allocate(block_len)?;
        let id = self.inner.next_key.get();
        self.inner.next_key.set(id + 1);
        home.live.borrow_mut().insert(id, (off, block_len));
        // Zero the header so locks/versions start clean even after reuse.
        let region = self.inner.cluster.region(node, home.region);
        region.write(off, &[0u8; BLOCK_HDR]);
        Some(SharedKey {
            id,
            home: node,
            region: home.region,
            block_off: off,
            len,
            coherence,
        })
    }

    fn free_local(&self, node: NodeId, id: u64) -> bool {
        let home = self.home(node);
        let entry = home.live.borrow_mut().remove(&id);
        match entry {
            Some((off, block_len)) => {
                home.alloc.borrow_mut().free(off, block_len);
                true
            }
            None => false,
        }
    }

    fn spawn_daemon(&self, node: NodeId, home: Rc<HomeState>) {
        // Control-plane processing costs daemon CPU (competes with node
        // load — allocation is not one-sided); replies ride the reliable
        // transport so a dropped response cannot strand a client past its
        // control timeout.
        let spec = ServiceSpec {
            name: "ddss.home",
            subsys: Subsys::Ddss,
            node,
            port: home.port,
            cost: Cost::Cpu(self.inner.cfg.daemon_cpu_ns),
            mode: Mode::Serial,
            queue_cap: None,
        };
        let alloc_d = self.clone();
        let free_d = self.clone();
        let dispatcher = Dispatcher::new()
            .on(OP_ALLOC, move |ctx: Ctx, msg| {
                let ddss = alloc_d.clone();
                async move {
                    let (reply_port, body) = legacy_request(&msg);
                    let req = AllocReq::decode(&body).expect("malformed DDSS alloc request");
                    let resp = AllocResp {
                        key: ddss
                            .alloc_local(node, req.len as usize, req.coherence)
                            .map(|key| (key.id, key.block_off as u64)),
                    };
                    ctx.reply(msg.src, reply_port, resp.encode(), Transport::RdmaSend)
                        .await;
                }
            })
            .on(OP_FREE, move |ctx: Ctx, msg| {
                let ddss = free_d.clone();
                async move {
                    let (reply_port, body) = legacy_request(&msg);
                    let req = FreeReq::decode(&body).expect("malformed DDSS free request");
                    let resp = FreeResp {
                        ok: ddss.free_local(node, req.id),
                    };
                    ctx.reply(msg.src, reply_port, resp.encode(), Transport::RdmaSend)
                        .await;
                }
            });
        Service::spawn(&self.inner.cluster, spec, dispatcher);
    }
}

/// A process-side handle to the substrate, bound to the node it runs on.
pub struct DdssClient {
    ddss: Ddss,
    node: NodeId,
    token: u64,
    /// Temporal-coherence cache: key id → (data, fetch time).
    temporal: RefCell<HashMap<u64, (Bytes, SimTime)>>,
}

impl DdssClient {
    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    fn cluster(&self) -> &Cluster {
        &self.ddss.inner.cluster
    }

    fn cfg(&self) -> &DdssConfig {
        &self.ddss.inner.cfg
    }

    async fn overhead(&self) {
        self.cluster().sim().sleep(self.cfg().op_overhead_ns).await;
    }

    /// Allocate `len` bytes on `home` under `coherence`. Local allocations
    /// short-circuit through shared memory (the IPC-management module);
    /// remote ones are an RPC to the home daemon.
    pub async fn allocate(
        &self,
        home: NodeId,
        len: usize,
        coherence: Coherence,
    ) -> Option<SharedKey> {
        self.overhead().await;
        if home == self.node {
            return self.ddss.alloc_local(home, len, coherence);
        }
        let home_state = self.ddss.home(home);
        // Reliable request + bounded response wait: a home that stays down
        // past every retry makes the allocation fail rather than hang.
        let resp = call_legacy(
            self.cluster(),
            self.node,
            home,
            home_state.port,
            OP_ALLOC,
            &AllocReq {
                len: len as u64,
                coherence,
            }
            .encode(),
            Transport::RdmaSend,
            CallPolicy::one_shot(self.cfg().ctrl_timeout_ns),
        )
        .await?;
        let resp = AllocResp::decode(&resp).expect("malformed DDSS alloc response");
        let (id, block_off) = resp.key?;
        Some(SharedKey {
            id,
            home,
            region: home_state.region,
            block_off: block_off as usize,
            len,
            coherence,
        })
    }

    /// Release a segment. Returns false if it was already freed.
    pub async fn free(&self, key: SharedKey) -> bool {
        self.overhead().await;
        self.temporal.borrow_mut().remove(&key.id);
        if key.home == self.node {
            return self.ddss.free_local(key.home, key.id);
        }
        let home_state = self.ddss.home(key.home);
        match call_legacy(
            self.cluster(),
            self.node,
            key.home,
            home_state.port,
            OP_FREE,
            &FreeReq { id: key.id }.encode(),
            Transport::RdmaSend,
            CallPolicy::one_shot(self.cfg().ctrl_timeout_ns),
        )
        .await
        {
            Some(resp) => {
                FreeResp::decode(&resp)
                    .expect("malformed DDSS free response")
                    .ok
            }
            None => false,
        }
    }

    /// Write `data` (≤ the segment length) under the segment's coherence
    /// model.
    pub async fn put(&self, key: &SharedKey, data: &[u8]) {
        let c = self.cluster().clone();
        let t_start = c.sim().now();
        let t0 = c.tracer().begin();
        self.put_inner(key, data).await;
        self.ddss.inner.puts.inc();
        self.ddss.inner.put_ns.record(c.sim().now() - t_start);
        if let Some(t0) = t0 {
            c.tracer().complete(
                t0,
                self.node.0,
                Subsys::Ddss,
                "ddss.put",
                vec![
                    ("key", key.id.into()),
                    ("bytes", (data.len() as u64).into()),
                    ("coherence", key.coherence.label().into()),
                ],
            );
        }
    }

    async fn put_inner(&self, key: &SharedKey, data: &[u8]) {
        assert!(
            data.len() <= key.len,
            "put of {} bytes into a {}-byte segment",
            data.len(),
            key.len
        );
        self.overhead().await;
        let c = self.cluster().clone();
        let me = self.node;
        let now_stamp = |c: &Cluster| c.sim().now().max(1);
        match key.coherence {
            Coherence::Null => {
                c.rdma_write(me, key.data_addr(), data).await;
            }
            Coherence::Read | Coherence::Temporal => {
                c.rdma_write(me, key.data_addr(), data).await;
                let stamp = now_stamp(&c);
                c.rdma_write(me, key.ver_addr(), &stamp.to_le_bytes()).await;
                if key.coherence == Coherence::Temporal {
                    self.temporal.borrow_mut().remove(&key.id);
                }
            }
            Coherence::Write => {
                // Serialize writers through the lock word used as a
                // fetch-and-add sequencer (ordering, not mutual exclusion).
                c.atomic_faa(me, key.lock_addr(), 1).await;
                c.rdma_write(me, key.data_addr(), data).await;
                let stamp = now_stamp(&c);
                c.rdma_write(me, key.ver_addr(), &stamp.to_le_bytes()).await;
            }
            Coherence::Strict => {
                self.lock(key).await;
                c.rdma_write(me, key.data_addr(), data).await;
                let stamp = now_stamp(&c);
                c.rdma_write(me, key.ver_addr(), &stamp.to_le_bytes()).await;
                self.unlock(key).await;
            }
            Coherence::Version => {
                c.rdma_write(me, key.data_addr(), data).await;
                c.atomic_faa(me, key.ver_addr(), 1).await;
            }
            Coherence::Delta => {
                // Read the version the delta applies to, append the delta
                // (modelled as the data write), publish by bumping.
                c.rdma_read(me, key.ver_addr(), 8).await;
                c.rdma_write(me, key.data_addr(), data).await;
                c.atomic_faa(me, key.ver_addr(), 1).await;
            }
        }
    }

    /// Read the full segment under its coherence model.
    pub async fn get(&self, key: &SharedKey) -> Bytes {
        let c = self.cluster().clone();
        let t_start = c.sim().now();
        let t0 = c.tracer().begin();
        let data = self.get_inner(key).await;
        self.ddss.inner.gets.inc();
        self.ddss.inner.get_ns.record(c.sim().now() - t_start);
        if let Some(t0) = t0 {
            c.tracer().complete(
                t0,
                self.node.0,
                Subsys::Ddss,
                "ddss.get",
                vec![
                    ("key", key.id.into()),
                    ("bytes", (data.len() as u64).into()),
                    ("coherence", key.coherence.label().into()),
                ],
            );
        }
        data
    }

    async fn get_inner(&self, key: &SharedKey) -> Bytes {
        self.overhead().await;
        let c = self.cluster().clone();
        let me = self.node;
        match key.coherence {
            Coherence::Null => c.rdma_read(me, key.data_addr(), key.len).await,
            Coherence::Read | Coherence::Write => {
                // One read covering stamp + data: the stamp lets the caller
                // detect staleness; in-simulator snapshots are not torn.
                let raw = c.rdma_read(me, key.ver_addr(), 8 + key.len).await;
                raw.slice(8..)
            }
            Coherence::Strict => {
                self.lock(key).await;
                let data = c.rdma_read(me, key.data_addr(), key.len).await;
                self.unlock(key).await;
                data
            }
            Coherence::Version => {
                loop {
                    let raw = c.rdma_read(me, key.ver_addr(), 8 + key.len).await;
                    let v1 = u64::from_le_bytes(raw[..8].try_into().unwrap());
                    let v2raw = c.rdma_read(me, key.ver_addr(), 8).await;
                    let v2 = u64::from_le_bytes(v2raw[..8].try_into().unwrap());
                    if v1 == v2 {
                        return raw.slice(8..);
                    }
                    // Concurrent update: retry after the backoff.
                    c.sim().sleep(self.cfg().lock_backoff_ns).await;
                }
            }
            Coherence::Delta => {
                let raw = c.rdma_read(me, key.ver_addr(), 8 + key.len).await;
                // Confirm no delta landed mid-reconstruction.
                c.rdma_read(me, key.ver_addr(), 8).await;
                raw.slice(8..)
            }
            Coherence::Temporal => {
                let now = c.sim().now();
                if let Some((data, at)) = self.temporal.borrow().get(&key.id) {
                    if now.saturating_sub(*at) <= self.cfg().temporal_ttl_ns {
                        return data.clone();
                    }
                }
                let data = c.rdma_read(me, key.data_addr(), key.len).await;
                self.temporal
                    .borrow_mut()
                    .insert(key.id, (data.clone(), c.sim().now()));
                data
            }
        }
    }

    /// Acquire the segment's lock (basic locking service). Spins with
    /// backoff on contention, up to the configured attempt budget — a holder
    /// that never unlocks turns into a panic here rather than a silent hang.
    pub async fn lock(&self, key: &SharedKey) {
        let c = self.cluster().clone();
        for _ in 0..self.cfg().lock_attempts {
            let old = c
                .atomic_cas(self.node, key.lock_addr(), 0, self.token)
                .await;
            if old == 0 {
                return;
            }
            c.sim().sleep(self.cfg().lock_backoff_ns).await;
        }
        panic!(
            "ddss lock budget exhausted on segment {} ({} attempts): holder never released",
            key.id,
            self.cfg().lock_attempts
        );
    }

    /// Release the segment's lock. Panics if this client does not hold it
    /// (a protocol bug).
    pub async fn unlock(&self, key: &SharedKey) {
        let c = self.cluster().clone();
        let old = c
            .atomic_cas(self.node, key.lock_addr(), self.token, 0)
            .await;
        assert_eq!(old, self.token, "unlock by non-holder of {:?}", key.id);
    }

    /// Read the segment's version/stamp word.
    pub async fn version(&self, key: &SharedKey) -> u64 {
        self.overhead().await;
        let raw = self.cluster().rdma_read(self.node, key.ver_addr(), 8).await;
        u64::from_le_bytes(raw[..8].try_into().unwrap())
    }

    /// Compare-and-put: write `data` only if the current version equals
    /// `expect`; returns `Ok(new_version)` or `Err(actual_version)`. The
    /// consistency primitive the paper's versioning support exposes.
    pub async fn put_versioned(
        &self,
        key: &SharedKey,
        data: &[u8],
        expect: u64,
    ) -> Result<u64, u64> {
        assert!(data.len() <= key.len);
        self.overhead().await;
        let c = self.cluster().clone();
        self.lock(key).await;
        let raw = c.rdma_read(self.node, key.ver_addr(), 8).await;
        let actual = u64::from_le_bytes(raw[..8].try_into().unwrap());
        let result = if actual == expect {
            c.rdma_write(self.node, key.data_addr(), data).await;
            let new = expect + 1;
            c.rdma_write(self.node, key.ver_addr(), &new.to_le_bytes())
                .await;
            Ok(new)
        } else {
            Err(actual)
        };
        self.unlock(key).await;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_fabric::FabricModel;
    use dc_sim::time::{ms, us};
    use dc_sim::Sim;

    fn setup(nodes: usize) -> (Sim, Cluster, Ddss) {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), nodes);
        let ids: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        let ddss = Ddss::new(&cluster, DdssConfig::default(), &ids);
        (sim, cluster, ddss)
    }

    #[test]
    fn put_get_round_trip_every_model() {
        for coh in Coherence::ALL {
            let (sim, _c, ddss) = setup(3);
            let client = ddss.client(NodeId(0));
            let got = sim.run_to(async move {
                let key = client.allocate(NodeId(2), 64, coh).await.unwrap();
                client.put(&key, b"the quick brown fox!").await;
                client.get(&key).await
            });
            assert_eq!(&got[..20], b"the quick brown fox!", "model {coh}");
        }
    }

    #[test]
    fn put_get_record_spans_and_metrics() {
        use dc_trace::TraceMode;
        let (sim, c, ddss) = setup(2);
        c.tracer().enable(TraceMode::Full);
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            let key = client
                .allocate(NodeId(1), 64, Coherence::Read)
                .await
                .unwrap();
            client.put(&key, b"abc").await;
            client.get(&key).await;
            client.get(&key).await;
        });
        let snap = c.metrics().snapshot();
        assert_eq!(snap.counter("ddss.puts"), 1);
        assert_eq!(snap.counter("ddss.gets"), 2);
        let names: Vec<_> = c
            .tracer()
            .events()
            .iter()
            .filter(|e| e.subsys == dc_trace::Subsys::Ddss)
            .map(|e| e.name)
            .collect();
        // The remote allocation shows up at the home daemon as the service
        // runtime's cpu-stage cost span nested inside the uniform handler
        // span (inner completes first), then the data-plane ops record their
        // own spans.
        assert_eq!(
            names,
            vec!["svc.cost", "ddss.home", "ddss.put", "ddss.get", "ddss.get"]
        );
    }

    #[test]
    fn remote_allocation_via_daemon_rpc() {
        let (sim, _c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        let key = sim.run_to(async move { client.allocate(NodeId(1), 128, Coherence::Null).await });
        let key = key.unwrap();
        assert_eq!(key.home, NodeId(1));
        assert_eq!(key.len, 128);
    }

    #[test]
    fn local_allocation_skips_network() {
        let (sim, c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            client
                .allocate(NodeId(0), 128, Coherence::Null)
                .await
                .unwrap();
        });
        assert_eq!(c.stats().sends_rdma, 0, "local alloc used the network");
    }

    #[test]
    fn allocation_exhaustion_returns_none_and_free_recovers() {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 1);
        let cfg = DdssConfig {
            heap_bytes: 128,
            ..DdssConfig::default()
        };
        let ddss = Ddss::new(&cluster, cfg, &[NodeId(0)]);
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            let k1 = client
                .allocate(NodeId(0), 100, Coherence::Null)
                .await
                .unwrap();
            assert!(client
                .allocate(NodeId(0), 100, Coherence::Null)
                .await
                .is_none());
            assert!(client.free(k1).await);
            assert!(client
                .allocate(NodeId(0), 100, Coherence::Null)
                .await
                .is_some());
        });
    }

    #[test]
    fn double_free_reports_false() {
        let (sim, _c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            let k = client
                .allocate(NodeId(1), 32, Coherence::Null)
                .await
                .unwrap();
            assert!(client.free(k).await);
            assert!(!client.free(k).await);
        });
    }

    #[test]
    fn strict_put_serializes_concurrent_writers() {
        let (sim, _c, ddss) = setup(3);
        let c0 = ddss.client(NodeId(0));
        let key =
            sim.run_to(async move { c0.allocate(NodeId(0), 8, Coherence::Strict).await.unwrap() });
        // Two remote writers race; strict coherence must serialize them so
        // the final value is exactly one of the two payloads.
        for n in [1u32, 2u32] {
            let cl = ddss.client(NodeId(n));
            sim.spawn(async move {
                let val = [n as u8; 8];
                cl.put(&key, &val).await;
            });
        }
        sim.run();
        let reader = ddss.client(NodeId(0));
        let got = sim.run_to(async move { reader.get(&key).await });
        assert!(got[..] == [1u8; 8][..] || got[..] == [2u8; 8][..]);
        assert!(got.iter().all(|&b| b == got[0]), "torn write under strict");
    }

    #[test]
    fn lock_excludes_and_hands_over() {
        let (sim, _c, ddss) = setup(3);
        let c0 = ddss.client(NodeId(0));
        let key =
            sim.run_to(async move { c0.allocate(NodeId(0), 8, Coherence::Null).await.unwrap() });
        let order: Rc<RefCell<Vec<u32>>> = Rc::default();
        for n in [1u32, 2u32] {
            let cl = ddss.client(NodeId(n));
            let ord = Rc::clone(&order);
            let sim_h = sim.handle();
            sim.spawn(async move {
                // Stagger so node 1 always wins the first CAS.
                sim_h.sleep(us(n as u64)).await;
                cl.lock(&key).await;
                ord.borrow_mut().push(n);
                sim_h.sleep(ms(1)).await;
                cl.unlock(&key).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "unlock by non-holder")]
    fn unlock_without_lock_panics() {
        let (sim, _c, ddss) = setup(2);
        let c0 = ddss.client(NodeId(0));
        let c1 = ddss.client(NodeId(1));
        sim.run_to(async move {
            let key = c0.allocate(NodeId(0), 8, Coherence::Null).await.unwrap();
            c0.lock(&key).await;
            c1.unlock(&key).await; // not the holder
        });
    }

    #[test]
    fn versioned_put_detects_conflicts() {
        let (sim, _c, ddss) = setup(2);
        let c0 = ddss.client(NodeId(0));
        let c1 = ddss.client(NodeId(1));
        sim.run_to(async move {
            let key = c0.allocate(NodeId(0), 8, Coherence::Version).await.unwrap();
            let v = c0.version(&key).await;
            assert_eq!(v, 0);
            assert_eq!(c0.put_versioned(&key, b"aaaa", 0).await, Ok(1));
            // A second writer with a stale expectation fails and learns the
            // actual version.
            assert_eq!(c1.put_versioned(&key, b"bbbb", 0).await, Err(1));
            assert_eq!(c1.put_versioned(&key, b"bbbb", 1).await, Ok(2));
            let got = c1.get(&key).await;
            assert_eq!(&got[..4], b"bbbb");
        });
    }

    #[test]
    fn version_model_bumps_on_every_put() {
        let (sim, _c, ddss) = setup(2);
        let c0 = ddss.client(NodeId(0));
        sim.run_to(async move {
            let key = c0
                .allocate(NodeId(1), 16, Coherence::Version)
                .await
                .unwrap();
            for i in 0..5u64 {
                assert_eq!(c0.version(&key).await, i);
                c0.put(&key, &[i as u8; 16]).await;
            }
            assert_eq!(c0.version(&key).await, 5);
        });
    }

    #[test]
    fn temporal_get_hits_cache_within_ttl() {
        let (sim, c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            let key = client
                .allocate(NodeId(1), 8, Coherence::Temporal)
                .await
                .unwrap();
            client.put(&key, b"11111111").await;
            let _ = client.get(&key).await; // cold: pays a read
        });
        let reads_cold = c.stats().reads;
        let client2 = ddss.client(NodeId(0));
        let cc = c.clone();
        let (reads_after_warm, hit) = sim.run_to(async move {
            let key = client2
                .allocate(NodeId(1), 8, Coherence::Temporal)
                .await
                .unwrap();
            client2.put(&key, b"22222222").await;
            let _ = client2.get(&key).await; // cold
            let before = cc.stats().reads;
            let v = client2.get(&key).await; // warm: served locally
            (cc.stats().reads - before, v)
        });
        assert!(reads_cold >= 1);
        assert_eq!(reads_after_warm, 0, "warm temporal get paid a read");
        assert_eq!(&hit[..], b"22222222");
    }

    #[test]
    fn temporal_cache_expires_after_ttl() {
        let (sim, c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        let h = sim.handle();
        let cc = c.clone();
        sim.run_to(async move {
            let key = client
                .allocate(NodeId(1), 8, Coherence::Temporal)
                .await
                .unwrap();
            client.put(&key, b"xxxxxxxx").await;
            let _ = client.get(&key).await;
            h.sleep(ms(2)).await; // past the 1ms TTL
            let before = cc.stats().reads;
            let _ = client.get(&key).await;
            assert_eq!(cc.stats().reads - before, 1, "stale entry not refreshed");
        });
    }

    #[test]
    fn put_latency_ordering_matches_model_costs() {
        // Strict must be the most expensive 1-byte put; Null the cheapest.
        let put_latency = |coh: Coherence| -> u64 {
            let (sim, _c, ddss) = setup(2);
            let client = ddss.client(NodeId(0));
            let h = sim.handle();
            sim.run_to(async move {
                let key = client.allocate(NodeId(1), 1, coh).await.unwrap();
                let t0 = h.now();
                client.put(&key, &[7u8]).await;
                h.now() - t0
            })
        };
        let null = put_latency(Coherence::Null);
        let strict = put_latency(Coherence::Strict);
        let version = put_latency(Coherence::Version);
        assert!(null < version && version < strict);
        // Paper Fig 3a: the worst 1-byte put stays around 55us.
        assert!(strict < us(60), "strict 1-byte put took {strict}ns");
        assert!(null > us(5));
    }

    #[test]
    fn control_plane_survives_message_drops() {
        use dc_fabric::FaultPlan;
        let (sim, c, ddss) = setup(2);
        c.install_faults(FaultPlan::from_parts(5, vec![], vec![], vec![], 0.3));
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            // Allocate, round-trip data, and free, all across a 30%-drop
            // wire: the reliable control plane must still land every step.
            let key = client
                .allocate(NodeId(1), 64, Coherence::Read)
                .await
                .unwrap();
            client.put(&key, b"chaos-proof payload!").await;
            let got = client.get(&key).await;
            assert_eq!(&got[..20], b"chaos-proof payload!");
            assert!(client.free(key).await);
        });
        assert!(c.fault_stats().dropped_msgs > 0, "no drops exercised");
    }

    #[test]
    fn data_plane_rides_out_home_crash_window() {
        use dc_fabric::faults::{CrashWindow, FaultPlan};
        let (sim, c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        let key = sim.run_to(async move {
            client
                .allocate(NodeId(1), 8, Coherence::Null)
                .await
                .unwrap()
        });
        c.install_faults(FaultPlan::from_parts(
            0,
            vec![CrashWindow {
                node: NodeId(1),
                start: 0,
                end: ms(8),
            }],
            vec![],
            vec![],
            0.0,
        ));
        let client = ddss.client(NodeId(0));
        let h = sim.handle();
        let (got, t) = sim.run_to(async move {
            client.put(&key, b"recoverd").await;
            let got = client.get(&key).await;
            (got, h.now())
        });
        assert_eq!(&got[..], b"recoverd");
        assert!(t >= ms(8), "completed at {t} inside the crash window");
        assert!(c.fault_stats().retries > 0);
    }

    #[test]
    #[should_panic(expected = "lock budget exhausted")]
    fn wedged_lock_panics_instead_of_hanging() {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        let cfg = DdssConfig {
            lock_attempts: 50,
            ..DdssConfig::default()
        };
        let ddss = Ddss::new(&cluster, cfg, &[NodeId(0), NodeId(1)]);
        let c0 = ddss.client(NodeId(0));
        let c1 = ddss.client(NodeId(1));
        sim.run_to(async move {
            let key = c0.allocate(NodeId(0), 8, Coherence::Null).await.unwrap();
            c0.lock(&key).await;
            // c0 never unlocks; c1 must give up after its budget.
            c1.lock(&key).await;
        });
    }

    #[test]
    fn get_does_not_consume_home_cpu() {
        let (sim, c, ddss) = setup(2);
        let client = ddss.client(NodeId(0));
        sim.run_to(async move {
            let key = client
                .allocate(NodeId(1), 1024, Coherence::Version)
                .await
                .unwrap();
            client.put(&key, &[1u8; 1024]).await;
            for _ in 0..10 {
                client.get(&key).await;
            }
        });
        // Only the daemon's single allocation RPC consumed home CPU.
        let busy = c.cpu(NodeId(1)).snapshot().busy_ns;
        assert_eq!(busy, DdssConfig::default().daemon_cpu_ns);
    }
}
