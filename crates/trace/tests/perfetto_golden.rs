//! Golden-file test for the Perfetto (Chrome trace-event) exporter.
//!
//! A small fixed scenario is exported and compared byte-for-byte against
//! the checked-in golden file. Any change to the export format shows up as
//! a diff here; regenerate intentionally with:
//!
//! ```sh
//! BLESS=1 cargo test -p dc-trace --test perfetto_golden
//! ```

use dc_sim::time::us;
use dc_sim::Sim;
use dc_trace::{json, Subsys, TraceMode, Tracer};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/perfetto_small.json"
);

/// A fixed two-node scenario exercising every phase kind: verb spans,
/// a DLM request/grant flow pair, a fault instant, and arg types.
fn fixed_scenario_export() -> String {
    let sim = Sim::new();
    let tr = Tracer::new(sim.handle());
    tr.enable(TraceMode::Full);
    let h = sim.handle();
    let tr2 = tr.clone();
    sim.run_to(async move {
        let t0 = tr2.begin().unwrap();
        h.sleep(us(3)).await;
        tr2.complete(
            t0,
            0,
            Subsys::Fabric,
            "verb.read",
            vec![("bytes", 4096u64.into()), ("peer", 1u32.into())],
        );
        let flow = 7u64 << 32;
        tr2.flow_start(flow, 0, Subsys::Dlm, "lock.req");
        h.sleep(us(2)).await;
        tr2.flow_end(flow, 1, Subsys::Dlm, "lock.req");
        tr2.instant(
            1,
            Subsys::Fault,
            "fault.drop",
            vec![("src", 0u32.into()), ("why", "drop_prob".into())],
        );
        let t1 = tr2.begin().unwrap();
        h.sleep(us(4)).await;
        tr2.complete(
            t1,
            1,
            Subsys::Dlm,
            "lock.hold",
            vec![("lock", 7u64.into()), ("queued", (-1i64).into())],
        );
    });
    tr.export_chrome_json()
}

#[test]
fn perfetto_export_matches_golden_file() {
    let got = fixed_scenario_export();
    assert!(
        json::validate(&got).is_ok(),
        "export must be valid JSON: {got}"
    );
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH).expect("read golden (run with BLESS=1 once)");
    assert_eq!(
        got, want,
        "Perfetto export drifted from the golden file; if intentional, \
         regenerate with BLESS=1 cargo test -p dc-trace --test perfetto_golden"
    );
}

#[test]
fn export_is_reproducible_across_runs() {
    assert_eq!(fixed_scenario_export(), fixed_scenario_export());
}
