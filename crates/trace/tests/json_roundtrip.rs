//! Round-trip tests for the hand-rolled JSON layer: everything the
//! exporters write must come back identically through the strict parser.
//! These guard the `dc-bench-report` contract the regression gate diffs —
//! an escaping bug or an empty-collection edge case in the writer would
//! otherwise only surface as a corrupt baseline.

use dc_trace::json::{parse, validate, JsonValue};
use dc_trace::{BenchReport, LatencyHist, Registry, ReportTable};

/// Walk a parsed tree and re-render it with the writer's own rules, then
/// parse again: the two trees must be identical (idempotent round trip).
fn reencode(v: &JsonValue, w: &mut dc_trace::json::JsonWriter) {
    match v {
        JsonValue::Null => {
            w.f64(f64::NAN); // the writer's only null spelling
        }
        JsonValue::Bool(b) => {
            w.bool(*b);
        }
        JsonValue::Num(n) => {
            w.f64(*n);
        }
        JsonValue::Str(s) => {
            w.string(s);
        }
        JsonValue::Arr(items) => {
            w.begin_array();
            for item in items {
                reencode(item, w);
            }
            w.end_array();
        }
        JsonValue::Obj(members) => {
            w.begin_object();
            for (k, val) in members {
                w.key(k);
                reencode(val, w);
            }
            w.end_object();
        }
    }
}

fn roundtrip(text: &str) -> JsonValue {
    let tree = parse(text).unwrap_or_else(|(off, msg)| panic!("{msg} at byte {off} in: {text}"));
    let mut w = dc_trace::json::JsonWriter::new();
    reencode(&tree, &mut w);
    let again = w.finish();
    parse(&again).unwrap_or_else(|(off, msg)| panic!("re-encoded text invalid: {msg}@{off}"))
}

#[test]
fn bench_report_with_metrics_round_trips() {
    let r = Registry::new();
    r.counter("fabric.verbs.read").add(41);
    r.gauge("sockets.reorder_depth").set(-2);
    let h = r.hist("dlm.lock_wait_ns");
    h.record(1_000);
    h.record(2_000);
    h.record(1_000_000);

    let mut rep = BenchReport::new("fig5a_lock_shared");
    rep.set_fingerprint("fm1-00ff00ff00ff00ff");
    rep.add_param("mode", "shared");
    rep.add_param("waiters", 16u64);
    rep.add_param("alpha", 0.9f64);
    rep.add_table(ReportTable {
        title: "Fig 5a — Shared-lock cascading latency (us)".into(),
        headers: vec!["scheme".into(), "1 waiters".into(), "16 waiters".into()],
        rows: vec![
            vec!["N-CoSED".into(), "10.0".into(), "40.1".into()],
            vec!["DQNL".into(), "10.0".into(), "160.1".into()],
        ],
    });
    rep.set_metrics(r.snapshot());
    let text = rep.to_json();

    let tree = roundtrip(&text);
    assert_eq!(
        tree.get("schema").unwrap().as_str(),
        Some("dc-bench-report/v2")
    );
    assert_eq!(
        tree.get("fingerprint").unwrap().as_str(),
        Some("fm1-00ff00ff00ff00ff")
    );
    assert_eq!(
        tree.get("params").unwrap().get("waiters").unwrap().as_f64(),
        Some(16.0)
    );
    let tables = tree.get("tables").unwrap().as_arr().unwrap();
    assert_eq!(tables.len(), 1);
    assert_eq!(
        tables[0].get("rows").unwrap().as_arr().unwrap()[1]
            .as_arr()
            .unwrap()[2]
            .as_str(),
        Some("160.1")
    );
    let metrics = tree.get("metrics").unwrap();
    assert_eq!(
        metrics.get("fabric.verbs.read").unwrap().as_f64(),
        Some(41.0)
    );
    assert_eq!(
        metrics.get("sockets.reorder_depth").unwrap().as_f64(),
        Some(-2.0)
    );
    let hist = metrics.get("dlm.lock_wait_ns").unwrap();
    assert_eq!(hist.get("count").unwrap().as_f64(), Some(3.0));
    assert_eq!(hist.get("max_ns").unwrap().as_f64(), Some(1_000_000.0));
}

#[test]
fn empty_histogram_and_empty_registry_round_trip() {
    // An empty registry serializes to the empty object.
    let empty = Registry::new().snapshot().to_json();
    assert_eq!(empty, "{}");
    assert_eq!(parse(&empty).unwrap(), JsonValue::Obj(vec![]));

    // A histogram that never saw a sample must still serialize to a full,
    // valid summary object (all-zero fields), not panic or emit garbage.
    let r = Registry::new();
    let _ = r.hist("ddss.put_ns");
    let text = r.snapshot().to_json();
    let tree = parse(&text).unwrap_or_else(|e| panic!("{e:?}: {text}"));
    let hist = tree.get("ddss.put_ns").expect("hist key present");
    for field in [
        "count", "min_ns", "max_ns", "mean_ns", "p50_ns", "p99_ns", "p999_ns",
    ] {
        assert_eq!(
            hist.get(field).and_then(JsonValue::as_f64),
            Some(0.0),
            "{field}"
        );
    }
    // Same guard at the type level.
    assert!(LatencyHist::new().is_empty());
    assert_eq!(LatencyHist::new().summary().count, 0);
}

#[test]
fn hostile_strings_survive_the_writer_and_parser() {
    // Table titles and cells are arbitrary UTF-8: quotes, backslashes,
    // control characters, non-ASCII, and the µ/em-dash the real titles use.
    let nasty = [
        "plain",
        "",
        "with \"quotes\" and \\backslashes\\",
        "newline\nand\ttab\rand\u{1}control",
        "µs — naïve 😀 ß",
        "trailing backslash \\",
        "json-ish: {\"a\":[1,2]}",
    ];
    let mut rep = BenchReport::new("escape_torture");
    let mut row = Vec::new();
    for (i, s) in nasty.iter().enumerate() {
        rep.add_param(&format!("p{i}"), *s);
        row.push(s.to_string());
    }
    rep.add_table(ReportTable {
        title: nasty[3].into(),
        headers: nasty.iter().map(|s| s.to_string()).collect(),
        rows: vec![row],
    });
    let text = rep.to_json();
    assert!(
        validate(&text).is_ok(),
        "writer emitted invalid JSON: {text}"
    );
    let tree = parse(&text).unwrap();
    let params = tree.get("params").unwrap();
    for (i, s) in nasty.iter().enumerate() {
        assert_eq!(
            params.get(&format!("p{i}")).unwrap().as_str(),
            Some(*s),
            "param p{i} mangled"
        );
    }
    let t0 = &tree.get("tables").unwrap().as_arr().unwrap()[0];
    assert_eq!(t0.get("title").unwrap().as_str(), Some(nasty[3]));
    let cells = t0.get("rows").unwrap().as_arr().unwrap()[0]
        .as_arr()
        .unwrap();
    let expect: Vec<JsonValue> = nasty
        .iter()
        .map(|s| JsonValue::Str(s.to_string()))
        .collect();
    assert_eq!(cells, &expect[..]);
}

#[test]
fn empty_tables_and_zero_row_tables_are_valid() {
    // No tables at all.
    let rep = BenchReport::new("nothing");
    assert!(parse(&rep.to_json()).is_ok());
    // A table with headers but no rows, and one with no headers.
    let mut rep = BenchReport::new("hollow");
    rep.add_table(ReportTable {
        title: "empty rows".into(),
        headers: vec!["a".into(), "b".into()],
        rows: vec![],
    });
    rep.add_table(ReportTable {
        title: "no headers".into(),
        headers: vec![],
        rows: vec![],
    });
    let tree = parse(&rep.to_json()).unwrap();
    let tables = tree.get("tables").unwrap().as_arr().unwrap();
    assert_eq!(tables[0].get("rows").unwrap().as_arr().unwrap().len(), 0);
    assert_eq!(tables[1].get("headers").unwrap().as_arr().unwrap().len(), 0);
}
