//! Minimal, dependency-free JSON emission and validation.
//!
//! The workspace's vendored `serde` is an offline marker stub, so the
//! exporters build their documents by hand through [`JsonWriter`]. Output is
//! deterministic: same calls, byte-identical text (floats use Rust's
//! shortest-roundtrip formatting, integers are exact).
//!
//! [`parse`] is a strict recursive-descent parser producing a [`JsonValue`]
//! tree, used by the round-trip tests, the CI artifact job, and the
//! `dc-regress` baseline loader — it accepts exactly the JSON grammar
//! (RFC 8259), no trailing commas, no comments. [`validate`] is the
//! syntax-check-only wrapper around it.

/// Incremental JSON writer with correct string escaping.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next element at each nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the document text.
    pub fn finish(self) -> String {
        assert!(self.need_comma.is_empty(), "unclosed JSON container");
        self.buf
    }

    fn elem(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Open an object as the next element.
    pub fn begin_object(&mut self) -> &mut Self {
        self.elem();
        self.buf.push('{');
        self.need_comma.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop().expect("end_object without begin");
        self.buf.push('}');
        self
    }

    /// Open an array as the next element.
    pub fn begin_array(&mut self) -> &mut Self {
        self.elem();
        self.buf.push('[');
        self.need_comma.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop().expect("end_array without begin");
        self.buf.push(']');
        self
    }

    /// Emit an object key; the next call writes its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
        // The value that follows is not a new element at this level.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emit a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.buf, s);
        self
    }

    /// Emit an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.elem();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emit a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.elem();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emit a float value (NaN/inf degrade to null, which JSON requires).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.elem();
        if v.is_finite() {
            let s = format!("{v}");
            self.buf.push_str(&s);
            // `{}` prints integral floats without a dot; keep the value a
            // JSON number either way (it already is), nothing to fix.
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Emit a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.elem();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emit raw pre-rendered JSON as the next element (caller guarantees
    /// validity — used to splice sub-documents).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.elem();
        self.buf.push_str(json);
        self
    }
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A parsed JSON value tree.
///
/// Objects preserve key insertion order (the writer emits deterministic
/// documents, so order is meaningful to the round-trip tests and the
/// `dc-regress` baseline loader). Numbers are held as `f64`, which is exact
/// for every integer the exporters emit below 2^53.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, keys in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse `text` as exactly one well-formed JSON value. Returns the first
/// error as `(byte_offset, message)`. Accepts exactly the same grammar as
/// [`validate`].
pub fn parse(text: &str) -> Result<JsonValue, (usize, &'static str)> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err((p.i, "trailing characters after JSON value"));
    }
    Ok(v)
}

/// Validate that `text` is exactly one well-formed JSON value. Returns the
/// first error as `(byte_offset, message)`.
pub fn validate(text: &str) -> Result<(), (usize, &'static str)> {
    parse(text).map(|_| ())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<JsonValue, (usize, &'static str)> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal(b"true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false").map(|()| JsonValue::Bool(false)),
            Some(b'n') => self.literal(b"null").map(|()| JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err((self.i, "expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), (usize, &'static str)> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err((self.i, "malformed literal"))
        }
    }

    fn object(&mut self) -> Result<JsonValue, (usize, &'static str)> {
        self.i += 1; // '{'
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err((self.i, "expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err((self.i, "expected ':' after key"));
            }
            self.i += 1;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err((self.i, "expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, (usize, &'static str)> {
        self.i += 1; // '['
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err((self.i, "expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, (usize, &'static str)> {
        self.i += 1; // opening quote
        let start = self.i;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.i += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.i += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.i += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.i += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.i += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.i += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.i += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: pair with the following
                                // \uXXXX low surrogate if present.
                                if self.b[self.i..].starts_with(b"\\u") {
                                    let save = self.i;
                                    self.i += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                    } else {
                                        self.i = save;
                                        0xFFFD
                                    }
                                } else {
                                    0xFFFD
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                0xFFFD // lone low surrogate
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err((self.i, "bad escape")),
                    }
                }
                0x00..=0x1f => return Err((self.i, "raw control character in string")),
                _ => {
                    // Copy one whole UTF-8 scalar (input is a &str, so the
                    // byte offsets of char boundaries are trustworthy).
                    let s = &self.text()[self.i..];
                    let ch = s.chars().next().expect("peeked byte implies a char");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
        Err((start, "unterminated string"))
    }

    fn hex4(&mut self) -> Result<u32, (usize, &'static str)> {
        let mut v = 0u32;
        for _ in 0..4 {
            match self.peek() {
                Some(h) if h.is_ascii_hexdigit() => {
                    v = v * 16 + (h as char).to_digit(16).expect("hexdigit");
                    self.i += 1;
                }
                _ => return Err((self.i, "bad \\u escape")),
            }
        }
        Ok(v)
    }

    fn text(&self) -> &str {
        // The parser is only constructed from &str input.
        std::str::from_utf8(self.b).expect("parser input was a str")
    }

    fn number(&mut self) -> Result<JsonValue, (usize, &'static str)> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err((self.i, "malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err((self.i, "digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err((self.i, "digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let s = &self.text()[start..self.i];
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| (start, "number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("fig\"3a\"");
        w.key("values")
            .begin_array()
            .u64(1)
            .f64(2.5)
            .i64(-3)
            .end_array();
        w.key("ok").bool(true);
        w.key("inner").begin_object().key("x").f64(0.1).end_object();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            r#"{"name":"fig\"3a\"","values":[1,2.5,-3],"ok":true,"inner":{"x":0.1}}"#
        );
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn escaping_covers_control_and_quote_chars() {
        let mut w = JsonWriter::new();
        w.string("a\nb\t\"c\"\\d\u{1}");
        let s = w.finish();
        assert_eq!(s, r#""a\nb\t\"c\"\\d\u0001""#);
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array()
            .f64(f64::NAN)
            .f64(f64::INFINITY)
            .f64(1.0)
            .end_array();
        let s = w.finish();
        assert_eq!(s, "[null,null,1]");
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for good in [
            "{}",
            "[]",
            "null",
            "-0.5e+10",
            r#"{"a":[1,2,{"b":"c"}],"d":null}"#,
            "  [ true , false ]  ",
            r#""\u00e9""#,
        ] {
            assert!(validate(good).is_ok(), "rejected valid: {good}");
        }
    }

    #[test]
    fn parse_builds_the_expected_tree() {
        let v = parse(r#"{"a":[1,-2.5,"x"],"b":{"c":null,"d":true},"e":""}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[
                JsonValue::Num(1.0),
                JsonValue::Num(-2.5),
                JsonValue::Str("x".into())
            ]
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some(""));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_preserves_key_order() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn parse_decodes_escapes_and_surrogate_pairs() {
        let v = parse(r#""a\nb\t\"c\"\\d\u0001\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"c\"\\d\u{1}é😀"));
        // Lone surrogates decode to the replacement character but remain
        // syntactically acceptable (the writer never emits them).
        let v = parse(r#""\ud800x""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{FFFD}x"));
    }

    #[test]
    fn writer_output_round_trips_through_parse() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("title")
            .string("Fig 5a — Shared-lock \"cascade\"\n(µs)");
        w.key("rows")
            .begin_array()
            .u64(7)
            .i64(-3)
            .f64(0.125)
            .end_array();
        w.key("ok").bool(false);
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("title").unwrap().as_str(),
            Some("Fig 5a — Shared-lock \"cascade\"\n(µs)")
        );
        assert_eq!(
            v.get("rows").unwrap().as_arr().unwrap(),
            &[
                JsonValue::Num(7.0),
                JsonValue::Num(-3.0),
                JsonValue::Num(0.125)
            ]
        );
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "[1 2]",
            "01",
            "1.",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid: {bad}");
        }
    }
}
