//! Minimal, dependency-free JSON emission and validation.
//!
//! The workspace's vendored `serde` is an offline marker stub, so the
//! exporters build their documents by hand through [`JsonWriter`]. Output is
//! deterministic: same calls, byte-identical text (floats use Rust's
//! shortest-roundtrip formatting, integers are exact).
//!
//! [`validate`] is a strict recursive-descent syntax checker used by the
//! golden tests and the CI artifact job to assert that every exported
//! document parses — it accepts exactly the JSON grammar (RFC 8259), no
//! trailing commas, no comments.

/// Incremental JSON writer with correct string escaping.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// Whether the next element at each nesting level needs a comma.
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and take the document text.
    pub fn finish(self) -> String {
        assert!(self.need_comma.is_empty(), "unclosed JSON container");
        self.buf
    }

    fn elem(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Open an object as the next element.
    pub fn begin_object(&mut self) -> &mut Self {
        self.elem();
        self.buf.push('{');
        self.need_comma.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        self.need_comma.pop().expect("end_object without begin");
        self.buf.push('}');
        self
    }

    /// Open an array as the next element.
    pub fn begin_array(&mut self) -> &mut Self {
        self.elem();
        self.buf.push('[');
        self.need_comma.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        self.need_comma.pop().expect("end_array without begin");
        self.buf.push(']');
        self
    }

    /// Emit an object key; the next call writes its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
        // The value that follows is not a new element at this level.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Emit a string value.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.elem();
        write_escaped(&mut self.buf, s);
        self
    }

    /// Emit an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.elem();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emit a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.elem();
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emit a float value (NaN/inf degrade to null, which JSON requires).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.elem();
        if v.is_finite() {
            let s = format!("{v}");
            self.buf.push_str(&s);
            // `{}` prints integral floats without a dot; keep the value a
            // JSON number either way (it already is), nothing to fix.
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Emit a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.elem();
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Emit raw pre-rendered JSON as the next element (caller guarantees
    /// validity — used to splice sub-documents).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.elem();
        self.buf.push_str(json);
        self
    }
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Validate that `text` is exactly one well-formed JSON value. Returns the
/// first error as `(byte_offset, message)`.
pub fn validate(text: &str) -> Result<(), (usize, &'static str)> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err((p.i, "trailing characters after JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn value(&mut self) -> Result<(), (usize, &'static str)> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal(b"true"),
            Some(b'f') => self.literal(b"false"),
            Some(b'n') => self.literal(b"null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err((self.i, "expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Result<(), (usize, &'static str)> {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            Ok(())
        } else {
            Err((self.i, "malformed literal"))
        }
    }

    fn object(&mut self) -> Result<(), (usize, &'static str)> {
        self.i += 1; // '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err((self.i, "expected object key"));
            }
            self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err((self.i, "expected ':' after key"));
            }
            self.i += 1;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err((self.i, "expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), (usize, &'static str)> {
        self.i += 1; // '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err((self.i, "expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), (usize, &'static str)> {
        self.i += 1; // opening quote
        while let Some(c) = self.peek() {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(());
                }
                b'\\' => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err((self.i, "bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err((self.i, "bad escape")),
                    }
                }
                0x00..=0x1f => return Err((self.i, "raw control character in string")),
                _ => self.i += 1,
            }
        }
        Err((self.i, "unterminated string"))
    }

    fn number(&mut self) -> Result<(), (usize, &'static str)> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err((self.i, "malformed number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err((self.i, "digit required after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err((self.i, "digit required in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_builds_nested_documents() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name").string("fig\"3a\"");
        w.key("values").begin_array().u64(1).f64(2.5).i64(-3).end_array();
        w.key("ok").bool(true);
        w.key("inner").begin_object().key("x").f64(0.1).end_object();
        w.end_object();
        let s = w.finish();
        assert_eq!(
            s,
            r#"{"name":"fig\"3a\"","values":[1,2.5,-3],"ok":true,"inner":{"x":0.1}}"#
        );
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn escaping_covers_control_and_quote_chars() {
        let mut w = JsonWriter::new();
        w.string("a\nb\t\"c\"\\d\u{1}");
        let s = w.finish();
        assert_eq!(s, r#""a\nb\t\"c\"\\d\u0001""#);
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array().f64(f64::NAN).f64(f64::INFINITY).f64(1.0).end_array();
        let s = w.finish();
        assert_eq!(s, "[null,null,1]");
        assert!(validate(&s).is_ok());
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for good in [
            "{}",
            "[]",
            "null",
            "-0.5e+10",
            r#"{"a":[1,2,{"b":"c"}],"d":null}"#,
            "  [ true , false ]  ",
            r#""\u00e9""#,
        ] {
            assert!(validate(good).is_ok(), "rejected valid: {good}");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "[1 2]",
            "01",
            "1.",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(validate(bad).is_err(), "accepted invalid: {bad}");
        }
    }
}
