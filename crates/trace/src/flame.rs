//! Collapsed-stack (flamegraph) folding of the recorded span tree.
//!
//! Chrome/Perfetto `Complete` spans already carry everything a flamegraph
//! needs — start, duration, node, subsystem, name — the nesting is just
//! implicit in time containment. This module rebuilds the per-node span
//! tree (a span is a child of the innermost span on the same node whose
//! half-open `[ts, ts+dur)` interval contains it) and folds it into the
//! `inferno`/`flamegraph.pl` collapsed-stack text format:
//!
//! ```text
//! node0;app.request;fabric.verb.read 12345
//! ```
//!
//! One line per distinct stack, whitespace-separated from its weight. The
//! weight is **self** virtual nanoseconds — the span's duration minus its
//! contained children's — so rendered flame widths sum correctly, exactly
//! like sampled-profiler self counts. Lines are emitted in lexicographic
//! order and nothing here consults a clock or randomness, so the same
//! events fold to byte-identical text on every run.

use std::collections::BTreeMap;

use crate::event::{Event, Ph};

struct Span {
    ts: u64,
    end: u64,
    node: u32,
    frame: String,
}

/// Fold `events` into collapsed-stack text. Only `Complete` spans
/// contribute; instants and flow arrows carry no duration to attribute.
pub fn fold_collapsed(events: &[Event]) -> String {
    let mut stacks = BTreeMap::new();
    fold_into(&mut stacks, events, "");
    render_collapsed(&stacks)
}

/// Fold `events` into `stacks`, prefixing every stack with `prefix` as a
/// synthetic root frame (pass `""` for none). Lets a caller merge several
/// sub-runs — e.g. one per lock scheme — into one flamegraph with each
/// sub-run under its own root.
pub fn fold_into(stacks: &mut BTreeMap<String, u64>, events: &[Event], prefix: &str) {
    let mut spans: Vec<Span> = events
        .iter()
        .filter_map(|e| match e.ph {
            Ph::Complete { dur_ns } => Some(Span {
                ts: e.ts,
                end: e.ts.saturating_add(dur_ns),
                node: e.node,
                frame: format!("{}.{}", e.subsys.label(), e.name),
            }),
            _ => None,
        })
        .collect();
    // Group by node, then containment order: earlier start first, longer
    // span first on ties (the longer one is the parent). The sort is
    // stable, so remaining ties keep deterministic record order.
    spans.sort_by(|a, b| (a.node, a.ts, b.end).cmp(&(b.node, b.ts, a.end)));

    // Pass 1: parent links and per-span contained-child time.
    let mut parent: Vec<Option<usize>> = vec![None; spans.len()];
    let mut child_ns: Vec<u64> = vec![0; spans.len()];
    let mut open: Vec<usize> = Vec::new(); // outermost-first stack of indices
    let mut prev_node = None;
    for i in 0..spans.len() {
        if prev_node != Some(spans[i].node) {
            open.clear();
            prev_node = Some(spans[i].node);
        }
        // Pop finished (or merely overlapping, from concurrent tasks on one
        // node) spans: a parent must fully contain the child.
        while let Some(&top) = open.last() {
            if spans[i].ts < spans[top].end && spans[i].end <= spans[top].end {
                break;
            }
            open.pop();
        }
        if let Some(&p) = open.last() {
            parent[i] = Some(p);
            child_ns[p] += spans[i].end - spans[i].ts;
        }
        open.push(i);
    }

    // Pass 2: self time per span, keyed by its full frame path. Overlapping
    // children (concurrent handlers inside one parent) can sum past the
    // parent's duration; saturate rather than go negative.
    for i in 0..spans.len() {
        let self_ns = (spans[i].end - spans[i].ts).saturating_sub(child_ns[i]);
        if self_ns == 0 {
            continue;
        }
        let mut frames = vec![spans[i].frame.as_str()];
        let mut p = parent[i];
        while let Some(j) = p {
            frames.push(spans[j].frame.as_str());
            p = parent[j];
        }
        let mut stack = String::new();
        if !prefix.is_empty() {
            stack.push_str(prefix);
            stack.push(';');
        }
        stack.push_str("node");
        stack.push_str(&spans[i].node.to_string());
        for f in frames.iter().rev() {
            stack.push(';');
            stack.push_str(f);
        }
        *stacks.entry(stack).or_insert(0) += self_ns;
    }
}

/// Render folded stacks as collapsed-stack text: one `stack weight` line
/// per entry, lexicographic stack order, trailing newline when non-empty.
pub fn render_collapsed(stacks: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (stack, ns) in stacks {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ArgVal, Subsys};

    fn span(ts: u64, dur: u64, node: u32, subsys: Subsys, name: &'static str) -> Event {
        Event {
            ts,
            node,
            subsys,
            name,
            ph: Ph::Complete { dur_ns: dur },
            args: Vec::new(),
        }
    }

    #[test]
    fn nesting_by_containment_and_self_time() {
        // request [0,100) contains verb [10,30) and verb [40,50).
        let evs = vec![
            span(0, 100, 0, Subsys::App, "request"),
            span(10, 20, 0, Subsys::Fabric, "verb.read"),
            span(40, 10, 0, Subsys::Fabric, "verb.write"),
        ];
        let out = fold_collapsed(&evs);
        assert_eq!(
            out,
            "node0;app.request 70\n\
             node0;app.request;fabric.verb.read 20\n\
             node0;app.request;fabric.verb.write 10\n"
        );
    }

    #[test]
    fn deeper_nesting_and_sibling_spans() {
        let evs = vec![
            span(0, 100, 1, Subsys::App, "request"),
            span(10, 60, 1, Subsys::Dlm, "lock"),
            span(20, 10, 1, Subsys::Fabric, "verb.cas"),
            span(120, 10, 1, Subsys::Fabric, "verb.read"), // sibling after request
        ];
        let out = fold_collapsed(&evs);
        assert_eq!(
            out,
            "node1;app.request 40\n\
             node1;app.request;dlm.lock 50\n\
             node1;app.request;dlm.lock;fabric.verb.cas 10\n\
             node1;fabric.verb.read 10\n"
        );
    }

    #[test]
    fn nodes_fold_independently() {
        let evs = vec![
            span(0, 10, 0, Subsys::Fabric, "verb.read"),
            span(0, 10, 1, Subsys::Fabric, "verb.read"),
        ];
        let out = fold_collapsed(&evs);
        assert_eq!(
            out,
            "node0;fabric.verb.read 10\nnode1;fabric.verb.read 10\n"
        );
    }

    #[test]
    fn instants_flows_and_zero_self_are_skipped() {
        let evs = vec![
            span(0, 10, 0, Subsys::App, "outer"),
            span(0, 10, 0, Subsys::Fabric, "inner"), // consumes all of outer
            Event {
                ts: 5,
                node: 0,
                subsys: Subsys::Fault,
                name: "drop",
                ph: Ph::Instant,
                args: vec![("src", ArgVal::U(1))],
            },
            Event {
                ts: 5,
                node: 0,
                subsys: Subsys::Dlm,
                name: "lock.request",
                ph: Ph::FlowStart { id: 7 },
                args: Vec::new(),
            },
        ];
        let out = fold_collapsed(&evs);
        // `outer` has zero self time (inner covers it fully) so only the
        // nested stack appears.
        assert_eq!(out, "node0;app.outer;fabric.inner 10\n");
    }

    #[test]
    fn overlap_without_containment_becomes_sibling() {
        // b starts inside a but ends after it: not contained, so sibling.
        let evs = vec![
            span(0, 10, 0, Subsys::App, "a"),
            span(5, 10, 0, Subsys::App, "b"),
        ];
        let out = fold_collapsed(&evs);
        assert_eq!(out, "node0;app.a 10\nnode0;app.b 10\n");
    }

    #[test]
    fn prefix_becomes_a_root_frame_and_folds_merge() {
        let a = vec![span(0, 10, 0, Subsys::Fabric, "verb.cas")];
        let b = vec![span(0, 20, 0, Subsys::Fabric, "verb.cas")];
        let mut stacks = BTreeMap::new();
        fold_into(&mut stacks, &a, "srsl");
        fold_into(&mut stacks, &b, "dqnl");
        let out = render_collapsed(&stacks);
        assert_eq!(
            out,
            "dqnl;node0;fabric.verb.cas 20\nsrsl;node0;fabric.verb.cas 10\n"
        );
    }

    #[test]
    fn fold_is_deterministic() {
        let evs = vec![
            span(0, 100, 0, Subsys::App, "request"),
            span(10, 20, 0, Subsys::Fabric, "verb.read"),
            span(0, 50, 1, Subsys::App, "request"),
        ];
        assert_eq!(fold_collapsed(&evs), fold_collapsed(&evs));
        assert!(fold_collapsed(&[]).is_empty());
    }
}
