//! Unified metrics registry.
//!
//! Every layer registers named counters, gauges, and latency histograms
//! here instead of keeping private `Cell` fields. Names are dotted paths
//! (`"fabric.verbs.read"`, `"fault.dropped_msgs"`, `"coopcache.local_hits"`)
//! and enumeration is deterministic: storage is a `BTreeMap`, so snapshots
//! and JSON exports list metrics in lexicographic name order regardless of
//! registration order.
//!
//! Handles are `Rc`-backed and `Clone`; incrementing is a `Cell` bump with
//! no registry lookup, so hot paths pre-register their handles once.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use dc_sim::SimTime;

use crate::hist::{HistSummary, LatencyHist, StreamHist};
use crate::json::JsonWriter;

/// Monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Point-in-time level (queue depths, occupancy). Also usable as a
/// high-water mark via [`Gauge::set_max`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Add signed `delta` to the level.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.set(self.0.get() + delta);
    }

    /// Raise the level to `v` if `v` is higher (high-water-mark tracking).
    #[inline]
    pub fn set_max(&self, v: i64) {
        if v > self.0.get() {
            self.0.set(v);
        }
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

/// Storage behind a [`HistHandle`]: exact sample-keeping (figure-gated
/// paths, where golden baselines pin nearest-rank quantiles bit-for-bit)
/// or streaming log-bucketed (hot/at-scale paths, constant memory).
#[derive(Debug)]
enum HistBacking {
    Exact(LatencyHist),
    Stream(StreamHist),
}

impl Default for HistBacking {
    fn default() -> Self {
        HistBacking::Exact(LatencyHist::new())
    }
}

/// Shared handle to a registered latency histogram.
#[derive(Clone, Debug, Default)]
pub struct HistHandle(Rc<RefCell<HistBacking>>);

impl HistHandle {
    /// Record one latency sample.
    #[inline]
    pub fn record(&self, ns: SimTime) {
        match &mut *self.0.borrow_mut() {
            HistBacking::Exact(h) => h.record(ns),
            HistBacking::Stream(h) => h.record(ns),
        }
    }

    /// Summarise the histogram's headline statistics.
    pub fn summary(&self) -> HistSummary {
        match &*self.0.borrow() {
            HistBacking::Exact(h) => h.summary(),
            HistBacking::Stream(h) => h.summary(),
        }
    }

    /// Whether this handle is backed by the streaming histogram.
    pub fn is_streaming(&self) -> bool {
        matches!(&*self.0.borrow(), HistBacking::Stream(_))
    }

    /// Read through to the underlying exact histogram. Panics on a
    /// streaming-backed handle — raw samples only exist in exact mode.
    pub fn with<R>(&self, f: impl FnOnce(&LatencyHist) -> R) -> R {
        match &*self.0.borrow() {
            HistBacking::Exact(h) => f(h),
            HistBacking::Stream(_) => {
                panic!("HistHandle::with on a streaming histogram (no raw samples kept)")
            }
        }
    }

    /// Read through to the underlying streaming histogram. Panics on an
    /// exact-backed handle.
    pub fn with_stream<R>(&self, f: impl FnOnce(&StreamHist) -> R) -> R {
        match &*self.0.borrow() {
            HistBacking::Stream(h) => f(h),
            HistBacking::Exact(_) => {
                panic!("HistHandle::with_stream on an exact histogram")
            }
        }
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Hist(HistHandle),
}

/// The value of one metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Hist(HistSummary),
}

/// Named registry of counters, gauges, and histograms.
#[derive(Default)]
pub struct Registry {
    metrics: RefCell<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.borrow().len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`. Registering the same name
    /// twice returns the same underlying cell; registering it as a
    /// different kind panics (names are a flat namespace).
    ///
    /// A lookup hit allocates nothing, so a caller without a pre-registered
    /// handle still pays only the map walk (prefer caching handles anyway).
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.borrow_mut();
        match m.get(name) {
            Some(Metric::Counter(c)) => c.clone(),
            Some(_) => panic!("metric {name:?} already registered with a different kind"),
            None => {
                let c = Counter::default();
                m.insert(name.to_string(), Metric::Counter(c.clone()));
                c
            }
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.borrow_mut();
        match m.get(name) {
            Some(Metric::Gauge(g)) => g.clone(),
            Some(_) => panic!("metric {name:?} already registered with a different kind"),
            None => {
                let g = Gauge::default();
                m.insert(name.to_string(), Metric::Gauge(g.clone()));
                g
            }
        }
    }

    /// Get or create the histogram named `name`, backed by the exact
    /// sample-keeping [`LatencyHist`]. Figure-gated paths use this: golden
    /// baselines pin its nearest-rank quantiles bit-for-bit.
    pub fn hist(&self, name: &str) -> HistHandle {
        self.hist_with(name, false)
    }

    /// Get or create the histogram named `name`, backed by the streaming
    /// constant-memory [`StreamHist`]. New/at-scale paths default to this.
    /// Re-registering a name keeps the first backing: the two backings are
    /// one metric kind, so a `hist`/`hist_streaming` mix on one name is
    /// allowed and the first caller decides the storage.
    pub fn hist_streaming(&self, name: &str) -> HistHandle {
        self.hist_with(name, true)
    }

    fn hist_with(&self, name: &str, streaming: bool) -> HistHandle {
        let mut m = self.metrics.borrow_mut();
        match m.get(name) {
            Some(Metric::Hist(h)) => h.clone(),
            Some(_) => panic!("metric {name:?} already registered with a different kind"),
            None => {
                let backing = if streaming {
                    HistBacking::Stream(StreamHist::new())
                } else {
                    HistBacking::Exact(LatencyHist::new())
                };
                let h = HistHandle(Rc::new(RefCell::new(backing)));
                m.insert(name.to_string(), Metric::Hist(h.clone()));
                h
            }
        }
    }

    /// All registered metric names, lexicographically sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.borrow().keys().cloned().collect()
    }

    /// Read every metric at once, in name order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let values = self
            .metrics
            .borrow()
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Hist(h) => MetricValue::Hist(h.summary()),
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

/// A flat, name-ordered reading of every metric in a registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in lexicographic name order.
    pub values: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.values[i].1)
    }

    /// Convenience: the counter named `name`, or 0 if absent/not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the gauge named `name`, or 0 if absent/not a gauge.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Render as a JSON object keyed by metric name. Counters and gauges
    /// become numbers; histograms become `{count,min_ns,...}` objects.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        for (name, v) in &self.values {
            w.key(name);
            match v {
                MetricValue::Counter(c) => {
                    w.u64(*c);
                }
                MetricValue::Gauge(g) => {
                    w.i64(*g);
                }
                MetricValue::Hist(h) => {
                    w.begin_object();
                    w.key("count").u64(h.count);
                    w.key("min_ns").u64(h.min_ns);
                    w.key("max_ns").u64(h.max_ns);
                    w.key("mean_ns").u64(h.mean_ns);
                    w.key("p50_ns").u64(h.p50_ns);
                    w.key("p99_ns").u64(h.p99_ns);
                    w.key("p999_ns").u64(h.p999_ns);
                    w.end_object();
                }
            }
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use dc_sim::time::us;

    #[test]
    fn counters_share_storage_by_name() {
        let r = Registry::new();
        let a = r.counter("fabric.verbs.read");
        let b = r.counter("fabric.verbs.read");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn gauge_levels_and_high_water_mark() {
        let r = Registry::new();
        let g = r.gauge("sockets.reorder_depth");
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set_max(7);
        g.set_max(5);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn hist_handles_record_and_summarise() {
        let r = Registry::new();
        let h = r.hist("dlm.lock_latency");
        h.record(us(10));
        h.record(us(20));
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean_ns, us(15));
        assert_eq!(h.with(|lh| lh.count()), 2);
    }

    #[test]
    fn enumeration_is_sorted_regardless_of_registration_order() {
        let r = Registry::new();
        r.counter("z.last");
        r.gauge("a.first");
        r.hist("m.middle");
        assert_eq!(r.names(), vec!["a.first", "m.middle", "z.last"]);
        let snap = r.snapshot();
        let names: Vec<_> = snap.values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn snapshot_reads_and_lookups() {
        let r = Registry::new();
        r.counter("c").add(9);
        r.gauge("g").set(-3);
        r.hist("h").record(us(1));
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 9);
        assert_eq!(snap.gauge("g"), -3);
        assert_eq!(snap.counter("missing"), 0);
        match snap.get("h") {
            Some(MetricValue::Hist(s)) => assert_eq!(s.count, 1),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic() {
        let r = Registry::new();
        r.counter("fabric.verbs.read").add(2);
        r.gauge("sockets.reorder_hwm").set(4);
        r.hist("app.latency").record(us(5));
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b);
        assert!(validate(&a).is_ok(), "snapshot must parse: {a}");
        assert!(a.starts_with("{\"app.latency\":{\"count\":1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    /// Registered-but-never-touched metrics must still appear in the
    /// snapshot (and its JSON) with explicit zero values — absence and
    /// zero are different facts, and cross-run diffs rely on the
    /// distinction.
    #[test]
    fn snapshot_includes_registered_but_zero_metrics() {
        let r = Registry::new();
        r.counter("fault.dropped_msgs");
        r.gauge("idle.depth");
        r.hist("quiet.latency");
        r.hist_streaming("quiet.stream");
        let snap = r.snapshot();
        assert_eq!(snap.values.len(), 4);
        assert_eq!(
            snap.get("fault.dropped_msgs"),
            Some(&MetricValue::Counter(0))
        );
        assert_eq!(snap.get("idle.depth"), Some(&MetricValue::Gauge(0)));
        assert_eq!(
            snap.get("quiet.latency"),
            Some(&MetricValue::Hist(crate::HistSummary::default()))
        );
        let json = snap.to_json();
        assert!(json.contains("\"fault.dropped_msgs\":0"), "{json}");
        assert!(json.contains("\"idle.depth\":0"), "{json}");
        assert!(validate(&json).is_ok());
    }

    #[test]
    fn streaming_hists_register_record_and_snapshot_like_exact() {
        let r = Registry::new();
        let h = r.hist_streaming("svc.cache.queue_wait_ns");
        assert!(h.is_streaming());
        assert!(!r.hist("app.latency").is_streaming());
        for i in 1..=100u64 {
            h.record(us(i));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min_ns, us(1));
        assert_eq!(s.max_ns, us(100));
        // Re-registering under either constructor returns the same cell.
        let again = r.hist("svc.cache.queue_wait_ns");
        assert!(again.is_streaming());
        again.record(us(7));
        assert_eq!(h.summary().count, 101);
        assert_eq!(h.with_stream(|sh| sh.count()), 101);
        // Streaming summaries serialize through the same JSON shape.
        let json = r.snapshot().to_json();
        assert!(
            json.contains("\"svc.cache.queue_wait_ns\":{\"count\":101"),
            "{json}"
        );
        assert!(validate(&json).is_ok());
    }

    #[test]
    #[should_panic(expected = "no raw samples")]
    fn with_on_streaming_backing_panics() {
        let r = Registry::new();
        r.hist_streaming("s").with(|h| h.count());
    }
}
