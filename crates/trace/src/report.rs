//! The `BenchReport` machine-readable result schema.
//!
//! Every `fig*`/sweep binary can emit one of these (via the shared
//! `--json` CLI flag) instead of — or alongside — its human-formatted
//! table. The document shape, version `dc-bench-report/v2`:
//!
//! ```json
//! {
//!   "schema": "dc-bench-report/v2",
//!   "bench": "fig3a_ddss_put",
//!   "fingerprint": "fm1-8e9c6d2a41b7f05c",
//!   "params": {"nodes": 8, "seed": 42},
//!   "tables": [
//!     {"title": "...", "headers": ["col", ...], "rows": [["cell", ...], ...]}
//!   ],
//!   "latency_breakdown": {"requests": 9, "total_ns": 123, "stages": [...]},
//!   "metrics": {"fabric.verbs.read": 1234, ...}
//! }
//! ```
//!
//! `fingerprint` is an optional digest of the calibration constants the run
//! was produced under (`dc_fabric::FabricModel::fingerprint`); regression
//! tooling refuses to diff reports with different fingerprints, so a stale
//! baseline is *detected* rather than silently compared. `params` records
//! the experiment configuration, `tables` carries the same data the binary
//! prints (cells pre-rendered as strings so formatting is identical between
//! modes), `latency_breakdown` is an optional per-stage critical-path
//! attribution ([`LatencyBreakdown`], produced by `dc-bench flame`), and
//! `metrics` is an optional flat snapshot (see [`MetricsSnapshot`]). Fields
//! appear in the order above; params, tables, and metric keys keep
//! insertion order, so a report built the same way is byte-identical.
//! Readers must ignore keys they don't know — the regression loader does,
//! which is how v2 grew `latency_breakdown` without a version bump.
//!
//! `v1` is the same document without the `fingerprint` field; readers
//! ([`schema_version`], the `dc-regress` loader) accept both.

use crate::critical::LatencyBreakdown;
use crate::event::ArgVal;
use crate::json::JsonWriter;
use crate::metrics::MetricsSnapshot;

/// Schema identifier emitted in every report.
pub const BENCH_REPORT_SCHEMA: &str = "dc-bench-report/v2";

/// The previous schema identifier, still accepted by readers (identical
/// shape minus the optional `fingerprint` field).
pub const BENCH_REPORT_SCHEMA_V1: &str = "dc-bench-report/v1";

/// Extract the schema version number from a report's `schema` string:
/// `Some(1)` for `dc-bench-report/v1`, `Some(2)` for v2, `None` for
/// anything else. Readers should reject `None` (unknown contract) rather
/// than guess.
pub fn schema_version(schema: &str) -> Option<u32> {
    match schema {
        BENCH_REPORT_SCHEMA_V1 => Some(1),
        BENCH_REPORT_SCHEMA => Some(2),
        _ => None,
    }
}

/// One table of results: a pre-rendered grid plus its title.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportTable {
    /// Table title (same string the human-format print shows).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, pre-rendered.
    pub rows: Vec<Vec<String>>,
}

/// Builder for a schema-versioned bench result document.
#[derive(Debug, Clone, Default)]
pub struct BenchReport {
    bench: String,
    fingerprint: Option<String>,
    params: Vec<(String, ArgVal)>,
    tables: Vec<ReportTable>,
    latency_breakdown: Option<LatencyBreakdown>,
    metrics: Option<MetricsSnapshot>,
}

impl BenchReport {
    /// A new empty report for the bench named `bench` (use the binary
    /// name, e.g. `"fig3a_ddss_put"`).
    pub fn new(bench: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            ..Default::default()
        }
    }

    /// Record the calibration fingerprint the run was produced under.
    pub fn set_fingerprint(&mut self, fingerprint: &str) -> &mut Self {
        self.fingerprint = Some(fingerprint.to_string());
        self
    }

    /// Record one configuration parameter (kept in insertion order).
    pub fn add_param(&mut self, key: &str, value: impl Into<ArgVal>) -> &mut Self {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// Append a result table.
    pub fn add_table(&mut self, table: ReportTable) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Attach a metrics snapshot (at most one; later calls replace it).
    pub fn set_metrics(&mut self, snapshot: MetricsSnapshot) -> &mut Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Attach a critical-path latency breakdown (at most one; later calls
    /// replace it).
    pub fn set_latency_breakdown(&mut self, breakdown: LatencyBreakdown) -> &mut Self {
        self.latency_breakdown = Some(breakdown);
        self
    }

    /// The bench name.
    pub fn bench(&self) -> &str {
        &self.bench
    }

    /// The calibration fingerprint, if one was recorded.
    pub fn fingerprint(&self) -> Option<&str> {
        self.fingerprint.as_deref()
    }

    /// The recorded parameters, in insertion order.
    pub fn params(&self) -> &[(String, ArgVal)] {
        &self.params
    }

    /// The result tables, in insertion order.
    pub fn tables(&self) -> &[ReportTable] {
        &self.tables
    }

    /// The attached metrics snapshot, if any.
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        self.metrics.as_ref()
    }

    /// The attached latency breakdown, if any.
    pub fn latency_breakdown(&self) -> Option<&LatencyBreakdown> {
        self.latency_breakdown.as_ref()
    }

    /// Render the report as a `dc-bench-report/v2` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema").string(BENCH_REPORT_SCHEMA);
        w.key("bench").string(&self.bench);
        if let Some(fp) = &self.fingerprint {
            w.key("fingerprint").string(fp);
        }
        w.key("params").begin_object();
        for (k, v) in &self.params {
            w.key(k);
            match v {
                ArgVal::U(x) => w.u64(*x),
                ArgVal::I(x) => w.i64(*x),
                ArgVal::F(x) => w.f64(*x),
                ArgVal::S(x) => w.string(x),
            };
        }
        w.end_object();
        w.key("tables").begin_array();
        for t in &self.tables {
            w.begin_object();
            w.key("title").string(&t.title);
            w.key("headers").begin_array();
            for h in &t.headers {
                w.string(h);
            }
            w.end_array();
            w.key("rows").begin_array();
            for row in &t.rows {
                w.begin_array();
                for cell in row {
                    w.string(cell);
                }
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        if let Some(b) = &self.latency_breakdown {
            w.key("latency_breakdown").raw(&b.to_json());
        }
        if let Some(m) = &self.metrics {
            w.key("metrics").raw(&m.to_json());
        }
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::metrics::Registry;

    #[test]
    fn report_shape_and_determinism() {
        let r = Registry::new();
        r.counter("fabric.verbs.read").add(3);
        let mut rep = BenchReport::new("fig3a_ddss_put");
        rep.add_param("nodes", 8u64)
            .add_param("seed", 42u64)
            .add_param("scheme", "bcc");
        rep.add_table(ReportTable {
            title: "DDSS put latency".into(),
            headers: vec!["size".into(), "us".into()],
            rows: vec![
                vec!["64".into(), "5.20".into()],
                vec!["4096".into(), "9.75".into()],
            ],
        });
        rep.set_metrics(r.snapshot());
        let a = rep.to_json();
        let b = rep.to_json();
        assert_eq!(a, b);
        assert!(validate(&a).is_ok(), "report must parse: {a}");
        assert!(a.starts_with(r#"{"schema":"dc-bench-report/v2","bench":"fig3a_ddss_put""#));
        assert!(a.contains(r#""params":{"nodes":8,"seed":42,"scheme":"bcc"}"#));
        assert!(a.contains(r#""rows":[["64","5.20"],["4096","9.75"]]"#));
        assert!(a.contains(r#""metrics":{"fabric.verbs.read":3}"#));
    }

    #[test]
    fn empty_report_is_still_valid() {
        let rep = BenchReport::new("sweep");
        let s = rep.to_json();
        assert!(validate(&s).is_ok());
        assert_eq!(
            s,
            r#"{"schema":"dc-bench-report/v2","bench":"sweep","params":{},"tables":[]}"#
        );
    }

    #[test]
    fn fingerprint_is_emitted_between_bench_and_params() {
        let mut rep = BenchReport::new("fig5a_lock_shared");
        rep.set_fingerprint("fm1-0011223344556677");
        rep.add_param("mode", "shared");
        let s = rep.to_json();
        assert!(validate(&s).is_ok());
        assert!(s.starts_with(
            r#"{"schema":"dc-bench-report/v2","bench":"fig5a_lock_shared","fingerprint":"fm1-0011223344556677","params""#
        ));
        assert_eq!(rep.fingerprint(), Some("fm1-0011223344556677"));
    }

    #[test]
    fn latency_breakdown_is_emitted_between_tables_and_metrics() {
        use crate::critical::analyze;
        use crate::event::{ArgVal, Event, Ph, Subsys};
        let r = Registry::new();
        r.counter("fabric.verbs.read").add(1);
        let evs = vec![Event {
            ts: 0,
            node: 0,
            subsys: Subsys::App,
            name: "request",
            ph: Ph::Complete { dur_ns: 10 },
            args: vec![("stage", ArgVal::S("request".into()))],
        }];
        let mut rep = BenchReport::new("demo");
        rep.set_latency_breakdown(analyze(&evs));
        rep.set_metrics(r.snapshot());
        let s = rep.to_json();
        assert!(validate(&s).is_ok(), "{s}");
        assert!(s.contains(r#""tables":[],"latency_breakdown":{"requests":1,"total_ns":10"#));
        let bd = s.find("latency_breakdown").unwrap();
        let m = s.find("\"metrics\"").unwrap();
        assert!(bd < m, "breakdown must precede metrics: {s}");
        assert_eq!(rep.latency_breakdown().unwrap().requests, 1);
    }

    #[test]
    fn schema_versions_are_recognised() {
        assert_eq!(schema_version("dc-bench-report/v1"), Some(1));
        assert_eq!(schema_version("dc-bench-report/v2"), Some(2));
        assert_eq!(schema_version(BENCH_REPORT_SCHEMA), Some(2));
        assert_eq!(schema_version("dc-bench-report/v3"), None);
        assert_eq!(schema_version(""), None);
    }

    #[test]
    fn accessors_expose_the_built_document() {
        let mut rep = BenchReport::new("demo");
        rep.add_param("n", 4u64);
        rep.add_table(ReportTable {
            title: "t".into(),
            headers: vec!["a".into()],
            rows: vec![vec!["1".into()]],
        });
        assert_eq!(rep.bench(), "demo");
        assert_eq!(rep.params().len(), 1);
        assert_eq!(rep.tables().len(), 1);
        assert!(rep.metrics().is_none());
        assert!(rep.fingerprint().is_none());
    }
}
