//! The sim-time event recorder and its Chrome trace-event exporter.
//!
//! A [`Tracer`] is a cheap clonable handle (like `SimHandle`). It starts
//! disabled — every record call is a branch on a `Cell<bool>` and nothing
//! else — so instrumented hot paths cost nothing in benches that don't
//! trace. Crucially, recording never spawns tasks, takes timers, or
//! otherwise touches the executor: enabling tracing cannot perturb the
//! simulated schedule, which is what keeps traced and untraced runs of the
//! same seed identical in behaviour, and two traced runs identical in
//! output.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use dc_sim::{SimHandle, SimTime};

use crate::event::{ArgVal, Event, Ph, Subsys, TraceMode};
use crate::json::JsonWriter;

struct TracerInner {
    sim: SimHandle,
    enabled: Cell<bool>,
    mode: Cell<TraceMode>,
    events: RefCell<VecDeque<Event>>,
    /// Events discarded by `Ring` eviction or `Sample` skipping.
    dropped: Cell<u64>,
    /// Counts record attempts in `Sample` mode; event kept when
    /// `counter % n == 0`.
    sample_counter: Cell<u64>,
    /// Allocator for caller-requested flow ids (`fresh_flow_id`). Subsystems
    /// that can derive a deterministic id from protocol state (e.g. DLM
    /// lock word + node) should prefer that; this is for request/response
    /// pairs with no natural key.
    next_flow: Cell<u64>,
}

/// Clonable handle to the per-cluster trace recorder.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.inner.enabled.get())
            .field("events", &self.inner.events.borrow().len())
            .field("dropped", &self.inner.dropped.get())
            .finish()
    }
}

impl Tracer {
    /// A new recorder bound to `sim`'s clock. Starts disabled.
    pub fn new(sim: SimHandle) -> Self {
        Tracer {
            inner: Rc::new(TracerInner {
                sim,
                enabled: Cell::new(false),
                mode: Cell::new(TraceMode::Full),
                events: RefCell::new(VecDeque::new()),
                dropped: Cell::new(0),
                sample_counter: Cell::new(0),
                next_flow: Cell::new(1),
            }),
        }
    }

    /// Turn recording on with the given memory-bounding mode. Clears any
    /// previously recorded events.
    pub fn enable(&self, mode: TraceMode) {
        if let TraceMode::Ring(cap) = mode {
            assert!(cap > 0, "ring capacity must be nonzero");
        }
        if let TraceMode::Sample(n) = mode {
            assert!(n > 0, "sample period must be nonzero");
        }
        self.inner.enabled.set(true);
        self.inner.mode.set(mode);
        self.inner.events.borrow_mut().clear();
        self.inner.dropped.set(0);
        self.inner.sample_counter.set(0);
    }

    /// Turn recording off (events already recorded are kept).
    pub fn disable(&self) {
        self.inner.enabled.set(false);
    }

    /// Whether recording is on. Instrumentation that must compute argument
    /// values should gate on this to keep the disabled path free.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.get()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.events.borrow().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.inner.events.borrow().is_empty()
    }

    /// Events discarded by ring eviction or sampling.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// A fresh flow-correlation id (deterministic: a simple counter).
    pub fn fresh_flow_id(&self) -> u64 {
        let id = self.inner.next_flow.get();
        self.inner.next_flow.set(id + 1);
        id
    }

    fn push(&self, ev: Event) {
        match self.inner.mode.get() {
            TraceMode::Full => self.inner.events.borrow_mut().push_back(ev),
            TraceMode::Ring(cap) => {
                let mut q = self.inner.events.borrow_mut();
                if q.len() == cap {
                    q.pop_front();
                    self.inner.dropped.set(self.inner.dropped.get() + 1);
                }
                q.push_back(ev);
            }
            TraceMode::Sample(n) => {
                let c = self.inner.sample_counter.get();
                self.inner.sample_counter.set(c + 1);
                if c.is_multiple_of(n) {
                    self.inner.events.borrow_mut().push_back(ev);
                } else {
                    self.inner.dropped.set(self.inner.dropped.get() + 1);
                }
            }
        }
    }

    /// Record an instant event at the current virtual time.
    #[inline]
    pub fn instant(
        &self,
        node: u32,
        subsys: Subsys,
        name: &'static str,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.instant_at(self.inner.sim.now(), node, subsys, name, args);
    }

    /// Record an instant event with an explicit timestamp. Used for events
    /// whose time is known statically (e.g. fault windows exported at plan
    /// install) so no runtime marker task has to run — spawning tasks for
    /// tracing would shift executor timer ordering.
    pub fn instant_at(
        &self,
        ts: SimTime,
        node: u32,
        subsys: Subsys,
        name: &'static str,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            ts,
            node,
            subsys,
            name,
            ph: Ph::Instant,
            args,
        });
    }

    /// Start a span: returns the current virtual time to pass to
    /// [`Tracer::complete`], or `None` when disabled (callers skip the whole
    /// span bookkeeping on the fast path).
    #[inline]
    pub fn begin(&self) -> Option<SimTime> {
        if self.is_enabled() {
            Some(self.inner.sim.now())
        } else {
            None
        }
    }

    /// Finish a span opened with [`Tracer::begin`]; duration is measured on
    /// the virtual clock.
    pub fn complete(
        &self,
        t0: SimTime,
        node: u32,
        subsys: Subsys,
        name: &'static str,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let now = self.inner.sim.now();
        self.complete_at(t0, now.saturating_sub(t0), node, subsys, name, args);
    }

    /// Record a complete span with explicit start and duration (for spans
    /// whose bounds are known without observing the clock twice).
    pub fn complete_at(
        &self,
        ts: SimTime,
        dur_ns: SimTime,
        node: u32,
        subsys: Subsys,
        name: &'static str,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            ts,
            node,
            subsys,
            name,
            ph: Ph::Complete { dur_ns },
            args,
        });
    }

    /// Record the start half of a flow arrow (e.g. a DLM lock request
    /// leaving the requester).
    pub fn flow_start(&self, id: u64, node: u32, subsys: Subsys, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            ts: self.inner.sim.now(),
            node,
            subsys,
            name,
            ph: Ph::FlowStart { id },
            args: Vec::new(),
        });
    }

    /// Record the end half of a flow arrow (e.g. the grant arriving back).
    pub fn flow_end(&self, id: u64, node: u32, subsys: Subsys, name: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.push(Event {
            ts: self.inner.sim.now(),
            node,
            subsys,
            name,
            ph: Ph::FlowEnd { id },
            args: Vec::new(),
        });
    }

    /// Snapshot the retained events in record order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.events.borrow().iter().cloned().collect()
    }

    /// Export the retained events as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` load). One process track per node,
    /// one thread track per subsystem. Deterministic: same events in, same
    /// bytes out.
    pub fn export_chrome_json(&self) -> String {
        export_chrome_json(&self.events())
    }
}

/// Render `events` as a Chrome trace-event JSON document.
pub fn export_chrome_json(events: &[Event]) -> String {
    // Track metadata first: name each (node, subsys) pair that appears, in
    // sorted order so the preamble is stable regardless of event order.
    let mut pairs: Vec<(u32, Subsys)> = events.iter().map(|e| (e.node, e.subsys)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    let mut nodes: Vec<u32> = pairs.iter().map(|&(n, _)| n).collect();
    nodes.dedup();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("displayTimeUnit").string("ns");
    w.key("traceEvents").begin_array();
    for &node in &nodes {
        w.begin_object();
        w.key("ph").string("M");
        w.key("name").string("process_name");
        w.key("pid").u64(node as u64);
        w.key("tid").u64(0);
        w.key("args").begin_object();
        w.key("name").string(&format!("node{node}"));
        w.end_object();
        w.end_object();
    }
    for &(node, subsys) in &pairs {
        w.begin_object();
        w.key("ph").string("M");
        w.key("name").string("thread_name");
        w.key("pid").u64(node as u64);
        w.key("tid").u64(subsys.tid() as u64);
        w.key("args").begin_object();
        w.key("name").string(subsys.label());
        w.end_object();
        w.end_object();
    }
    for ev in events {
        w.begin_object();
        w.key("name").string(ev.name);
        w.key("cat").string(ev.subsys.label());
        match ev.ph {
            Ph::Instant => {
                w.key("ph").string("i");
                w.key("s").string("t");
            }
            Ph::Complete { dur_ns } => {
                w.key("ph").string("X");
                w.key("dur").raw(&us_fixed(dur_ns));
            }
            Ph::FlowStart { id } => {
                w.key("ph").string("s");
                w.key("id").u64(id);
            }
            Ph::FlowEnd { id } => {
                w.key("ph").string("f");
                w.key("bp").string("e");
                w.key("id").u64(id);
            }
        }
        w.key("ts").raw(&us_fixed(ev.ts));
        w.key("pid").u64(ev.node as u64);
        w.key("tid").u64(ev.subsys.tid() as u64);
        if !ev.args.is_empty() {
            w.key("args").begin_object();
            for (k, v) in &ev.args {
                w.key(k);
                match v {
                    ArgVal::U(x) => w.u64(*x),
                    ArgVal::I(x) => w.i64(*x),
                    ArgVal::F(x) => w.f64(*x),
                    ArgVal::S(x) => w.string(x),
                };
            }
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Nanoseconds rendered as microseconds with fixed 3-decimal precision,
/// via integer math only — `12345` ns → `"12.345"`. Chrome `ts`/`dur` are
/// in microseconds; going through floats here would invite rounding noise
/// into the byte-identical-export guarantee.
fn us_fixed(ns: SimTime) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use dc_sim::time::us;
    use dc_sim::Sim;

    fn traced_sim(mode: TraceMode) -> (Sim, Tracer) {
        let sim = Sim::new();
        let tr = Tracer::new(sim.handle());
        tr.enable(mode);
        (sim, tr)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let sim = Sim::new();
        let tr = Tracer::new(sim.handle());
        assert!(!tr.is_enabled());
        tr.instant(0, Subsys::App, "x", vec![]);
        assert!(tr.begin().is_none());
        assert!(tr.is_empty());
    }

    #[test]
    fn spans_measure_virtual_time() {
        let (sim, tr) = traced_sim(TraceMode::Full);
        let h = sim.handle();
        let tr2 = tr.clone();
        sim.run_to(async move {
            let t0 = tr2.begin().unwrap();
            h.sleep(us(7)).await;
            tr2.complete(
                t0,
                3,
                Subsys::Fabric,
                "verb.read",
                vec![("bytes", 64u64.into())],
            );
        });
        let evs = tr.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].ts, 0);
        assert_eq!(evs[0].node, 3);
        assert_eq!(evs[0].ph, Ph::Complete { dur_ns: us(7) });
        assert_eq!(evs[0].args, vec![("bytes", ArgVal::U(64))]);
    }

    #[test]
    fn ring_mode_evicts_oldest_and_counts_drops() {
        let (_sim, tr) = traced_sim(TraceMode::Ring(3));
        for i in 0..5u64 {
            tr.instant_at(i, 0, Subsys::App, "tick", vec![("i", i.into())]);
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        let ts: Vec<_> = tr.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn sample_mode_keeps_every_nth_deterministically() {
        let (_sim, tr) = traced_sim(TraceMode::Sample(3));
        for i in 0..10u64 {
            tr.instant_at(i, 0, Subsys::App, "tick", vec![]);
        }
        let ts: Vec<_> = tr.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 3, 6, 9]);
        assert_eq!(tr.dropped(), 6);
    }

    #[test]
    fn enable_resets_state() {
        let (_sim, tr) = traced_sim(TraceMode::Ring(2));
        tr.instant_at(0, 0, Subsys::App, "a", vec![]);
        tr.instant_at(1, 0, Subsys::App, "b", vec![]);
        tr.instant_at(2, 0, Subsys::App, "c", vec![]);
        assert_eq!(tr.dropped(), 1);
        tr.enable(TraceMode::Full);
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn flow_ids_are_sequential() {
        let (_sim, tr) = traced_sim(TraceMode::Full);
        assert_eq!(tr.fresh_flow_id(), 1);
        assert_eq!(tr.fresh_flow_id(), 2);
    }

    #[test]
    fn export_is_valid_json_and_deterministic() {
        let (_sim, tr) = traced_sim(TraceMode::Full);
        tr.instant_at(us(1), 1, Subsys::Fault, "drop", vec![("src", 0u32.into())]);
        tr.complete_at(
            us(2),
            us(5),
            0,
            Subsys::Dlm,
            "lock",
            vec![("lock", 7u64.into())],
        );
        tr.flow_start(42, 0, Subsys::Dlm, "lock.req");
        let a = tr.export_chrome_json();
        let b = tr.export_chrome_json();
        assert_eq!(a, b);
        assert!(validate(&a).is_ok(), "export must parse: {a}");
        assert!(a.contains("\"process_name\""));
        assert!(a.contains("\"thread_name\""));
        assert!(a.contains("\"ts\":2.000"));
        assert!(a.contains("\"dur\":5.000"));
    }

    #[test]
    fn us_fixed_uses_integer_math() {
        assert_eq!(us_fixed(0), "0.000");
        assert_eq!(us_fixed(999), "0.999");
        assert_eq!(us_fixed(1_000), "1.000");
        assert_eq!(us_fixed(12_345), "12.345");
    }
}
