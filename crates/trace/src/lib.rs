//! # dc-trace — deterministic observability for the simulated data center
//!
//! The paper's resource-monitoring argument is that visibility must be
//! cheap and always-on; this crate is the reproduction's version of that
//! for its own internals. It provides:
//!
//! - [`Tracer`] — a sim-time-stamped structured event/span recorder. No
//!   wall clock is ever consulted and recording never touches the executor
//!   (no spawns, no timers), so a traced run schedules identically to an
//!   untraced one and two traced runs of the same seed export byte-identical
//!   documents. Memory is bounded via [`TraceMode`] (full / ring / sample).
//! - [`Registry`] — a unified metrics registry of named [`Counter`]s,
//!   [`Gauge`]s, and [`LatencyHist`] handles, enumerable in deterministic
//!   (lexicographic) order, replacing the per-layer ad-hoc stat cells.
//! - Exporters — Chrome trace-event JSON (loads in Perfetto /
//!   `chrome://tracing`; one process track per node, one thread track per
//!   subsystem), a flat [`MetricsSnapshot`] JSON, and the
//!   [`BenchReport`] schema the `fig*`/sweep binaries emit under `--json`.
//!
//! JSON is hand-rolled ([`json::JsonWriter`]) because the workspace's
//! vendored `serde` is an offline marker stub; [`json::validate`] is the
//! strict parser the tests and CI artifact job use to check every export.

pub mod critical;
pub mod event;
pub mod flame;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod report;
pub mod tracer;

pub use critical::{
    LatencyBreakdown, RequestBreakdown, StageAgg, STAGES, STAGE_KEY, STAGE_REQUEST,
};
pub use event::{ArgVal, Event, Ph, Subsys, TraceMode};
pub use flame::{fold_collapsed, fold_into, render_collapsed};
pub use hist::{tps, HistSummary, LatencyHist, StreamHist};
pub use json::JsonValue;
pub use metrics::{Counter, Gauge, HistHandle, MetricValue, MetricsSnapshot, Registry};
pub use report::{
    schema_version, BenchReport, ReportTable, BENCH_REPORT_SCHEMA, BENCH_REPORT_SCHEMA_V1,
};
pub use tracer::{export_chrome_json, Tracer};
