//! Trace event model.
//!
//! Events are recorded in executor order with virtual (`SimTime`) timestamps
//! only — no wall clock anywhere — so the same seed and configuration yield
//! the same event sequence byte for byte. Each event is scoped by the node
//! it happened on and by subsystem; the Chrome exporter maps node → process
//! track and subsystem → thread track.

use dc_sim::SimTime;

/// The layer an event belongs to. Maps to a Perfetto thread track within the
/// node's process track; variants are ordered the way tracks should appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsys {
    /// RDMA-style fabric verbs (read/write/CAS/FAA/send).
    Fabric,
    /// Socket lanes and flow-control machinery.
    Sockets,
    /// Distributed lock manager protocols.
    Dlm,
    /// Distributed data sharing substrate.
    Ddss,
    /// Cooperative cache service.
    Coopcache,
    /// Active resource monitoring.
    Resmon,
    /// Injected faults (drops, crashes, stalls, latency windows).
    Fault,
    /// Application / experiment-harness level markers.
    App,
}

impl Subsys {
    /// Stable lowercase label used in exports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            Subsys::Fabric => "fabric",
            Subsys::Sockets => "sockets",
            Subsys::Dlm => "dlm",
            Subsys::Ddss => "ddss",
            Subsys::Coopcache => "coopcache",
            Subsys::Resmon => "resmon",
            Subsys::Fault => "fault",
            Subsys::App => "app",
        }
    }

    /// Thread-track id within a node's process track (stable across runs).
    pub fn tid(self) -> u32 {
        match self {
            Subsys::Fabric => 1,
            Subsys::Sockets => 2,
            Subsys::Dlm => 3,
            Subsys::Ddss => 4,
            Subsys::Coopcache => 5,
            Subsys::Resmon => 6,
            Subsys::Fault => 7,
            Subsys::App => 8,
        }
    }

    /// Every subsystem, in track order (used to emit track metadata).
    pub const ALL: [Subsys; 8] = [
        Subsys::Fabric,
        Subsys::Sockets,
        Subsys::Dlm,
        Subsys::Ddss,
        Subsys::Coopcache,
        Subsys::Resmon,
        Subsys::Fault,
        Subsys::App,
    ];
}

/// One typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float.
    F(f64),
    /// String.
    S(String),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::U(v)
    }
}

impl From<u32> for ArgVal {
    fn from(v: u32) -> Self {
        ArgVal::U(v as u64)
    }
}

impl From<usize> for ArgVal {
    fn from(v: usize) -> Self {
        ArgVal::U(v as u64)
    }
}

impl From<i64> for ArgVal {
    fn from(v: i64) -> Self {
        ArgVal::I(v)
    }
}

impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::F(v)
    }
}

impl From<&str> for ArgVal {
    fn from(v: &str) -> Self {
        ArgVal::S(v.to_string())
    }
}

impl From<String> for ArgVal {
    fn from(v: String) -> Self {
        ArgVal::S(v)
    }
}

/// Event phase, mirroring the Chrome trace-event phases the exporter emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ph {
    /// A point-in-time marker (`"i"`).
    Instant,
    /// A completed span of `dur_ns` (`"X"`).
    Complete {
        /// Span duration in virtual nanoseconds.
        dur_ns: SimTime,
    },
    /// Start of a flow arrow (`"s"`), linking to the matching `FlowEnd`.
    FlowStart {
        /// Flow correlation id; both halves must use the same id.
        id: u64,
    },
    /// End of a flow arrow (`"f"`, binding point `e`).
    FlowEnd {
        /// Flow correlation id; both halves must use the same id.
        id: u64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual timestamp. For `Complete` spans this is the span start.
    pub ts: SimTime,
    /// Node the event happened on (process track in the export).
    pub node: u32,
    /// Subsystem (thread track in the export).
    pub subsys: Subsys,
    /// Event name, e.g. `"verb.read"` or `"lock.acquire"`.
    pub name: &'static str,
    /// Phase and phase-specific payload.
    pub ph: Ph,
    /// Typed key/value arguments, in insertion order.
    pub args: Vec<(&'static str, ArgVal)>,
}

/// How the recorder bounds memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep every event (tests, short scenarios).
    Full,
    /// Keep only the most recent `N` events; older ones are dropped and
    /// counted.
    Ring(usize),
    /// Keep every `N`-th event (counter-based, so sampling is deterministic);
    /// skipped events are counted as dropped.
    Sample(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsys_labels_and_tids_are_unique() {
        let mut labels: Vec<_> = Subsys::ALL.iter().map(|s| s.label()).collect();
        let mut tids: Vec<_> = Subsys::ALL.iter().map(|s| s.tid()).collect();
        labels.sort_unstable();
        labels.dedup();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(labels.len(), Subsys::ALL.len());
        assert_eq!(tids.len(), Subsys::ALL.len());
    }

    #[test]
    fn argval_from_impls() {
        assert_eq!(ArgVal::from(3u64), ArgVal::U(3));
        assert_eq!(ArgVal::from(3u32), ArgVal::U(3));
        assert_eq!(ArgVal::from(3usize), ArgVal::U(3));
        assert_eq!(ArgVal::from(-3i64), ArgVal::I(-3));
        assert_eq!(ArgVal::from(1.5f64), ArgVal::F(1.5));
        assert_eq!(ArgVal::from("x"), ArgVal::S("x".into()));
    }
}
