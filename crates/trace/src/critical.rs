//! Critical-path latency attribution over the recorded span tree.
//!
//! Instrumented layers tag their spans with a `("stage", ...)` argument
//! (the taxonomy is contractual — see DESIGN.md "Span and stage taxonomy"):
//!
//! * `"request"` — one span per sampled end-to-end request, recorded on the
//!   node where the request runs; everything else attributes *into* it.
//! * `"wire"` — fabric verb time (one-sided read/write/CAS/FAA, sends).
//! * `"queue"` — time a request sat in a service's admission queue before
//!   its handler was dispatched.
//! * `"handler"` — service handler execution (dc-svc pump dispatch).
//! * `"cpu"` — explicit CPU charging outside a handler.
//! * `"retry"` — retry/backoff sleeps (fabric budgeted retries, SvcClient
//!   attempt backoff, DLM spin backoff).
//! * `"remote"` — derived, not tagged: the interval bracketed by a
//!   req→grant flow-arrow pair (`FlowStart`/`FlowEnd` with one endpoint on
//!   the request's node), i.e. time blocked on another node.
//!
//! For each request span the analyzer sweeps its `[ts, ts+dur)` window and
//! attributes every elementary sub-interval to the innermost overlapping
//! stage span on the same node (latest start wins, shortest span breaks
//! ties; tagged spans beat flow-derived `remote` intervals). Time covered
//! by nothing is `"other"`. The arithmetic is integer nanoseconds over a
//! partition of the window, so per request the stage sums equal the
//! end-to-end time *exactly* — the invariant `tests/trace_determinism.rs`
//! asserts for every sampled request.
//!
//! Caveat: attribution is per-node and time-based. If several sampled
//! requests overlap on one node, a stage span is attributed to every
//! request window it intersects; sums still partition each window, but
//! cross-request bleed is possible. The engines sample disjoint requests
//! per node (webfarm tags one in-flight request per client task).

use std::collections::BTreeMap;

use crate::event::{ArgVal, Event, Ph};
use crate::hist::StreamHist;
use crate::json::JsonWriter;

/// Span argument key carrying the stage tag.
pub const STAGE_KEY: &str = "stage";
/// Stage value marking a sampled end-to-end request span.
pub const STAGE_REQUEST: &str = "request";

/// Attributable stages, in report order. `"other"` (uncovered time) last.
pub const STAGES: [&str; 7] = [
    "wire", "queue", "handler", "cpu", "retry", "remote", "other",
];
/// Index of the derived `"remote"` stage in [`STAGES`].
const REMOTE: usize = 5;
/// Index of the fallback `"other"` stage in [`STAGES`].
const OTHER: usize = 6;

fn stage_index(s: &str) -> Option<usize> {
    STAGES.iter().position(|&x| x == s)
}

fn stage_arg(e: &Event) -> Option<&str> {
    e.args.iter().find_map(|(k, v)| match v {
        ArgVal::S(s) if *k == STAGE_KEY => Some(s.as_str()),
        _ => None,
    })
}

/// One sampled request's attributed latency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBreakdown {
    /// Node the request span was recorded on.
    pub node: u32,
    /// Request span start (virtual ns).
    pub start_ns: u64,
    /// End-to-end request time (the span's duration).
    pub total_ns: u64,
    /// Per-stage attribution, indexed like [`STAGES`]. Sums to `total_ns`
    /// exactly.
    pub stage_ns: [u64; STAGES.len()],
}

/// Aggregate attribution of one stage across all sampled requests.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAgg {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Total attributed time across requests.
    pub total_ns: u64,
    /// Share of the summed end-to-end time, percent.
    pub share_pct: f64,
    /// Median per-request stage time (streaming, one-bucket accuracy).
    pub p50_ns: u64,
    /// 99th-percentile per-request stage time.
    pub p99_ns: u64,
    /// Worst per-request stage time (exact).
    pub max_ns: u64,
}

/// The `latency_breakdown` section of a bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBreakdown {
    /// Number of sampled request spans.
    pub requests: u64,
    /// Summed end-to-end time of all sampled requests.
    pub total_ns: u64,
    /// Per-stage aggregates in [`STAGES`] order (all stages always present,
    /// zeros included, so the report shape is stable).
    pub stages: Vec<StageAgg>,
}

/// Attribute every sampled request span in `events`. Requests are returned
/// in deterministic `(node, start, record-order)` order.
pub fn analyze_requests(events: &[Event]) -> Vec<RequestBreakdown> {
    // Matched flow arrows: id -> (start_ts, start_node, end_ts, end_node).
    let mut flow_start: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
    let mut flows: Vec<(u64, u32, u64, u32)> = Vec::new();
    for e in events {
        match e.ph {
            Ph::FlowStart { id } => {
                flow_start.insert(id, (e.ts, e.node));
            }
            Ph::FlowEnd { id } => {
                if let Some((ts0, n0)) = flow_start.remove(&id) {
                    if e.ts >= ts0 {
                        flows.push((ts0, n0, e.ts, e.node));
                    }
                }
            }
            _ => {}
        }
    }

    // Tagged stage spans and request spans.
    struct Tagged {
        ts: u64,
        end: u64,
        node: u32,
        stage: usize,
    }
    let mut tagged: Vec<Tagged> = Vec::new();
    let mut requests: Vec<(u64, u64, u32)> = Vec::new(); // (ts, end, node)
    for e in events {
        let Ph::Complete { dur_ns } = e.ph else {
            continue;
        };
        match stage_arg(e) {
            Some(STAGE_REQUEST) => requests.push((e.ts, e.ts + dur_ns, e.node)),
            Some(s) => {
                if let Some(stage) = stage_index(s) {
                    tagged.push(Tagged {
                        ts: e.ts,
                        end: e.ts + dur_ns,
                        node: e.node,
                        stage,
                    });
                }
            }
            None => {}
        }
    }
    requests.sort_by_key(|&(ts, end, node)| (node, ts, end));

    let mut out = Vec::with_capacity(requests.len());
    for &(rts, rend, node) in &requests {
        // Candidates clipped to the request window. `local` distinguishes
        // tagged spans (innermost-wins) from flow-derived remote intervals
        // (lowest priority).
        struct Cand {
            ts: u64,
            end: u64,
            local: bool,
            stage: usize,
        }
        let mut cands: Vec<Cand> = Vec::new();
        for t in tagged.iter().filter(|t| t.node == node) {
            let (a, b) = (t.ts.max(rts), t.end.min(rend));
            if a < b {
                cands.push(Cand {
                    ts: a,
                    end: b,
                    local: true,
                    stage: t.stage,
                });
            }
        }
        for &(ts0, n0, ts1, n1) in &flows {
            if n0 != node && n1 != node {
                continue;
            }
            let (a, b) = (ts0.max(rts), ts1.min(rend));
            if a < b {
                cands.push(Cand {
                    ts: a,
                    end: b,
                    local: false,
                    stage: REMOTE,
                });
            }
        }
        // Elementary sweep over the window's breakpoints.
        let mut points: Vec<u64> = vec![rts, rend];
        for c in &cands {
            points.push(c.ts);
            points.push(c.end);
        }
        points.sort_unstable();
        points.dedup();
        let mut stage_ns = [0u64; STAGES.len()];
        for w in points.windows(2) {
            let (a, b) = (w[0], w[1]);
            // Innermost active candidate: tagged beats remote, then latest
            // start, then earliest end, then highest stage index (a
            // deterministic tiebreak for identical intervals).
            let best = cands
                .iter()
                .filter(|c| c.ts <= a && c.end >= b)
                .max_by_key(|c| (c.local, c.ts, std::cmp::Reverse(c.end), c.stage));
            let idx = best.map_or(OTHER, |c| c.stage);
            stage_ns[idx] += b - a;
        }
        out.push(RequestBreakdown {
            node,
            start_ns: rts,
            total_ns: rend - rts,
            stage_ns,
        });
    }
    out
}

/// Aggregate [`analyze_requests`] into the report section. Per-stage
/// percentiles come from a [`StreamHist`] over per-request stage times —
/// the streaming path, since sampled-request counts are unbounded.
pub fn analyze(events: &[Event]) -> LatencyBreakdown {
    let per_request = analyze_requests(events);
    aggregate(&per_request)
}

/// Aggregate pre-computed per-request breakdowns.
pub fn aggregate(per_request: &[RequestBreakdown]) -> LatencyBreakdown {
    let total_ns: u64 = per_request.iter().map(|r| r.total_ns).sum();
    let mut hists: Vec<StreamHist> = (0..STAGES.len()).map(|_| StreamHist::new()).collect();
    for r in per_request {
        for (h, &ns) in hists.iter_mut().zip(r.stage_ns.iter()) {
            h.record(ns);
        }
    }
    let stages = STAGES
        .iter()
        .zip(&hists)
        .map(|(&stage, h)| {
            let stage_total: u64 = per_request
                .iter()
                .map(|r| r.stage_ns[stage_index(stage).unwrap()])
                .sum();
            StageAgg {
                stage,
                total_ns: stage_total,
                share_pct: if total_ns == 0 {
                    0.0
                } else {
                    stage_total as f64 * 100.0 / total_ns as f64
                },
                p50_ns: h.p50_ns(),
                p99_ns: h.p99_ns(),
                max_ns: h.max_ns(),
            }
        })
        .collect();
    LatencyBreakdown {
        requests: per_request.len() as u64,
        total_ns,
        stages,
    }
}

impl LatencyBreakdown {
    /// Render as the JSON object spliced into a bench report under the
    /// `latency_breakdown` key. Deterministic: integer-derived fields only.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("requests").u64(self.requests);
        w.key("total_ns").u64(self.total_ns);
        w.key("stages").begin_array();
        for s in &self.stages {
            w.begin_object();
            w.key("stage").string(s.stage);
            w.key("total_ns").u64(s.total_ns);
            w.key("share_pct").f64(s.share_pct);
            w.key("p50_ns").u64(s.p50_ns);
            w.key("p99_ns").u64(s.p99_ns);
            w.key("max_ns").u64(s.max_ns);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Subsys;
    use crate::json::validate;

    fn tagged(ts: u64, dur: u64, node: u32, name: &'static str, stage: &str) -> Event {
        Event {
            ts,
            node,
            subsys: Subsys::App,
            name,
            ph: Ph::Complete { dur_ns: dur },
            args: vec![(STAGE_KEY, ArgVal::S(stage.to_string()))],
        }
    }

    #[test]
    fn stages_partition_the_request_window_exactly() {
        let evs = vec![
            tagged(0, 100, 0, "request", STAGE_REQUEST),
            tagged(10, 20, 0, "verb.read", "wire"),
            tagged(50, 25, 0, "svc", "handler"),
        ];
        let reqs = analyze_requests(&evs);
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.total_ns, 100);
        assert_eq!(r.stage_ns.iter().sum::<u64>(), r.total_ns);
        assert_eq!(r.stage_ns[stage_index("wire").unwrap()], 20);
        assert_eq!(r.stage_ns[stage_index("handler").unwrap()], 25);
        assert_eq!(r.stage_ns[OTHER], 55);
    }

    #[test]
    fn innermost_tagged_span_wins() {
        // handler [10,90) contains wire [20,30): wire wins inside itself.
        let evs = vec![
            tagged(0, 100, 0, "request", STAGE_REQUEST),
            tagged(10, 80, 0, "svc", "handler"),
            tagged(20, 10, 0, "verb.read", "wire"),
        ];
        let r = &analyze_requests(&evs)[0];
        assert_eq!(r.stage_ns[stage_index("wire").unwrap()], 10);
        assert_eq!(r.stage_ns[stage_index("handler").unwrap()], 70);
        assert_eq!(r.stage_ns[OTHER], 20);
        assert_eq!(r.stage_ns.iter().sum::<u64>(), 100);
    }

    #[test]
    fn flow_arrows_fill_remote_but_lose_to_tagged_spans() {
        let mut evs = vec![
            tagged(0, 100, 1, "request", STAGE_REQUEST),
            tagged(40, 10, 1, "verb.cas", "wire"),
        ];
        evs.push(Event {
            ts: 20,
            node: 1,
            subsys: Subsys::Dlm,
            name: "lock.request",
            ph: Ph::FlowStart { id: 9 },
            args: Vec::new(),
        });
        evs.push(Event {
            ts: 80,
            node: 1,
            subsys: Subsys::Dlm,
            name: "lock.grant",
            ph: Ph::FlowEnd { id: 9 },
            args: Vec::new(),
        });
        let r = &analyze_requests(&evs)[0];
        // [20,80) is remote except the tagged wire [40,50).
        assert_eq!(r.stage_ns[stage_index("wire").unwrap()], 10);
        assert_eq!(r.stage_ns[REMOTE], 50);
        assert_eq!(r.stage_ns[OTHER], 40);
        assert_eq!(r.stage_ns.iter().sum::<u64>(), 100);
    }

    #[test]
    fn spans_on_other_nodes_do_not_attribute() {
        let evs = vec![
            tagged(0, 50, 0, "request", STAGE_REQUEST),
            tagged(0, 50, 1, "verb.read", "wire"),
        ];
        let r = &analyze_requests(&evs)[0];
        assert_eq!(r.stage_ns[OTHER], 50);
    }

    #[test]
    fn clipping_stage_spans_straddling_the_window() {
        let evs = vec![
            tagged(10, 30, 0, "request", STAGE_REQUEST),
            tagged(0, 25, 0, "verb.read", "wire"), // [0,25) clips to [10,25)
            tagged(35, 20, 0, "svc", "handler"),   // clips to [35,40)
        ];
        let r = &analyze_requests(&evs)[0];
        assert_eq!(r.stage_ns[stage_index("wire").unwrap()], 15);
        assert_eq!(r.stage_ns[stage_index("handler").unwrap()], 5);
        assert_eq!(r.stage_ns[OTHER], 10);
        assert_eq!(r.total_ns, 30);
    }

    #[test]
    fn aggregate_and_json_shape() {
        let evs = vec![
            tagged(0, 100, 0, "request", STAGE_REQUEST),
            tagged(0, 60, 0, "verb.read", "wire"),
            tagged(200, 100, 0, "request", STAGE_REQUEST),
            tagged(200, 20, 0, "verb.read", "wire"),
        ];
        let b = analyze(&evs);
        assert_eq!(b.requests, 2);
        assert_eq!(b.total_ns, 200);
        assert_eq!(b.stages.len(), STAGES.len());
        let wire = &b.stages[0];
        assert_eq!(wire.stage, "wire");
        assert_eq!(wire.total_ns, 80);
        assert_eq!(wire.share_pct, 40.0);
        assert_eq!(wire.max_ns, 60);
        let sum: u64 = b.stages.iter().map(|s| s.total_ns).sum();
        assert_eq!(sum, b.total_ns);
        let json = b.to_json();
        assert!(validate(&json).is_ok(), "{json}");
        assert!(
            json.starts_with("{\"requests\":2,\"total_ns\":200,\"stages\":[{\"stage\":\"wire\"")
        );
        assert_eq!(json, analyze(&evs).to_json(), "deterministic");
    }

    #[test]
    fn empty_events_yield_an_empty_breakdown() {
        let b = analyze(&[]);
        assert_eq!(b.requests, 0);
        assert_eq!(b.total_ns, 0);
        assert_eq!(b.stages.len(), STAGES.len());
        assert!(validate(&b.to_json()).is_ok());
    }
}
