//! Latency accounting shared by the experiment engines and the metrics
//! registry. Moved here from `dc-core` so every layer (fabric upward) can
//! register histograms without a dependency cycle; `dc-core` re-exports the
//! types for compatibility.

use std::cell::RefCell;

use dc_sim::SimTime;

/// A latency histogram with exact aggregate moments and nearest-rank
/// quantiles over the raw samples.
///
/// Empty-histogram contract: every accessor (`min_ns`, `max_ns`, `mean_ns`,
/// `quantile_ns`, and the `summary()` struct) returns 0 when no sample has
/// been recorded — callers never see the `u64::MAX` sentinel used
/// internally for the running minimum.
#[derive(Debug, Clone, Default)]
pub struct LatencyHist {
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
    samples: Vec<u64>,
    /// Sorted copy of `samples`, built lazily on the first quantile query
    /// and invalidated by `record` — experiment reports ask for several
    /// quantiles back to back, and re-sorting per query made that O(k·n log n).
    sorted: RefCell<Option<Vec<u64>>>,
}

/// One-struct view of a histogram, used by the exporters and bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Minimum sample (0 when empty).
    pub min_ns: u64,
    /// Maximum sample (0 when empty).
    pub max_ns: u64,
    /// Mean (0 when empty).
    pub mean_ns: u64,
    /// Median by nearest rank (0 when empty).
    pub p50_ns: u64,
    /// 99th percentile by nearest rank (0 when empty).
    pub p99_ns: u64,
    /// 99.9th percentile by nearest rank (0 when empty).
    pub p999_ns: u64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            min_ns: u64::MAX,
            ..Default::default()
        }
    }

    /// Record one latency.
    pub fn record(&mut self, ns: SimTime) {
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.samples.push(ns);
        *self.sorted.borrow_mut() = None;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / self.count as u128) as u64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Maximum sample (0 when empty — guarded like `min_ns`, rather than
    /// leaking whatever the raw field holds).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// The q-quantile (0.0–1.0) by nearest-rank on the sorted samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.samples.is_empty() {
            return 0;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        });
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median (nearest rank).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.5)
    }

    /// 99th percentile (nearest rank).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th percentile (nearest rank).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Snapshot every headline statistic at once.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min_ns: self.min_ns(),
            max_ns: self.max_ns(),
            mean_ns: self.mean_ns(),
            p50_ns: self.p50_ns(),
            p99_ns: self.p99_ns(),
            p999_ns: self.p999_ns(),
        }
    }
}

/// Sub-bucket precision of [`StreamHist`]: 2^5 = 32 sub-buckets per octave,
/// bounding the relative bucket width at 1/32 ≈ 3.1%.
const STREAM_PRECISION: u32 = 5;
/// Sub-buckets per octave.
const STREAM_SUBS: u64 = 1 << STREAM_PRECISION;
/// Total bucket count covering the full `u64` range: one exact octave for
/// values `< 32` plus 59 log octaves of 32 sub-buckets each.
const STREAM_BUCKETS: usize = (64 - STREAM_PRECISION as usize + 1) * STREAM_SUBS as usize;

/// A streaming log-bucketed (HDR-style) latency histogram.
///
/// Constant memory regardless of sample count — `record` is O(1) with no
/// allocation, so it survives the 10^8-sample at-scale runs that would OOM
/// the exact [`LatencyHist`]. Quantiles are answered from the bucket
/// cumulative counts and are accurate to one bucket width (≤ 1/32 relative
/// error above 32 ns, exact below); `count`/`sum`/`min`/`max` stay exact.
/// Shard-local histograms merge losslessly with [`StreamHist::merge`],
/// which is associative and commutative bucket-for-bucket.
///
/// The empty-histogram contract matches [`LatencyHist`]: every accessor
/// returns 0 until the first sample.
#[derive(Debug, Clone)]
pub struct StreamHist {
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
    buckets: Box<[u64; STREAM_BUCKETS]>,
}

impl Default for StreamHist {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamHist {
    /// An empty histogram.
    pub fn new() -> Self {
        StreamHist {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: Box::new([0; STREAM_BUCKETS]),
        }
    }

    /// Bucket index for a value. Values below 32 get exact unit buckets;
    /// above, the top `STREAM_PRECISION + 1` significant bits select the
    /// bucket, so consecutive octaves tile the range with no gaps.
    #[inline]
    fn index(ns: u64) -> usize {
        if ns < STREAM_SUBS {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let octave = (msb - STREAM_PRECISION + 1) as u64;
        let offset = (ns >> (msb - STREAM_PRECISION)) - STREAM_SUBS;
        (octave * STREAM_SUBS + offset) as usize
    }

    /// Inclusive `[lo, hi]` value range of bucket `idx`.
    fn bucket_bounds(idx: usize) -> (u64, u64) {
        let octave = idx as u64 / STREAM_SUBS;
        let offset = idx as u64 % STREAM_SUBS;
        if octave == 0 {
            return (offset, offset);
        }
        let lo = (STREAM_SUBS + offset) << (octave - 1);
        (lo, lo + ((1u64 << (octave - 1)) - 1))
    }

    /// Width of the bucket containing `ns` (the quantile error bound at
    /// that magnitude).
    pub fn bucket_width(ns: u64) -> u64 {
        let (lo, hi) = Self::bucket_bounds(Self::index(ns));
        hi - lo + 1
    }

    /// Record one latency.
    #[inline]
    pub fn record(&mut self, ns: SimTime) {
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[Self::index(ns)] += 1;
    }

    /// Fold another histogram into this one. Lossless: the merged buckets
    /// equal what a single histogram fed both sample streams would hold,
    /// in any merge order (associative and commutative).
    pub fn merge(&mut self, other: &StreamHist) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in nanoseconds (exact; 0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / self.count as u128) as u64
        }
    }

    /// Minimum sample (exact; 0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Maximum sample (exact; 0 when empty).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// The q-quantile (0.0–1.0) by nearest rank over the bucket counts.
    ///
    /// The rank-selected sample lies inside the returned bucket, so the
    /// answer is within one bucket width of the exact nearest-rank value
    /// (and clamped into `[min, max]`). Rank 1 and rank `count` return the
    /// exact min/max.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == 1 {
            return self.min_ns;
        }
        if rank == self.count {
            return self.max_ns;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = Self::bucket_bounds(idx);
                return hi.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (nearest rank, one-bucket accuracy).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.5)
    }

    /// 99th percentile (nearest rank, one-bucket accuracy).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th percentile (nearest rank, one-bucket accuracy).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Snapshot every headline statistic at once.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min_ns: self.min_ns(),
            max_ns: self.max_ns(),
            mean_ns: self.mean_ns(),
            p50_ns: self.p50_ns(),
            p99_ns: self.p99_ns(),
            p999_ns: self.p999_ns(),
        }
    }

    /// Non-empty `(bucket_lo_ns, count)` pairs in value order — the raw
    /// shape for sparkline rendering and merge tests.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_bounds(i).0, n))
            .collect()
    }
}

/// Throughput over a span: `completed / span`.
pub fn tps(completed: u64, span_ns: SimTime) -> f64 {
    if span_ns == 0 {
        return 0.0;
    }
    completed as f64 / (span_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::time::{ms, us};

    #[test]
    fn moments_and_quantiles() {
        let mut h = LatencyHist::new();
        for v in [us(1), us(2), us(3), us(4), us(100)] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_ns(), us(22));
        assert_eq!(h.min_ns(), us(1));
        assert_eq!(h.max_ns(), us(100));
        assert_eq!(h.quantile_ns(0.5), us(3));
        assert_eq!(h.quantile_ns(1.0), us(100));
        assert_eq!(h.quantile_ns(0.2), us(1));
    }

    #[test]
    fn repeated_quantile_queries_agree_and_track_new_samples() {
        let mut h = LatencyHist::new();
        for v in [us(5), us(1), us(9), us(3), us(7)] {
            h.record(v);
        }
        // Repeated queries hit the cached sort and must agree exactly.
        for _ in 0..3 {
            assert_eq!(h.quantile_ns(0.5), us(5));
            assert_eq!(h.quantile_ns(0.0), us(1));
            assert_eq!(h.quantile_ns(1.0), us(9));
        }
        // A new record invalidates the cache; queries see the new sample.
        h.record(us(11));
        assert_eq!(h.quantile_ns(1.0), us(11));
        assert_eq!(h.quantile_ns(0.5), us(5));
        // Cloned histograms answer independently and identically.
        let c = h.clone();
        assert_eq!(c.quantile_ns(0.5), h.quantile_ns(0.5));
        assert_eq!(c.quantile_ns(0.99), h.quantile_ns(0.99));
    }

    #[test]
    fn empty_histogram_is_safe_everywhere() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.p999_ns(), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn percentile_accessors_match_quantiles() {
        let mut h = LatencyHist::new();
        for i in 1..=1000u64 {
            h.record(us(i));
        }
        assert_eq!(h.p50_ns(), us(500));
        assert_eq!(h.p99_ns(), us(990));
        assert_eq!(h.p999_ns(), us(999));
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_ns, us(1));
        assert_eq!(s.max_ns, us(1000));
        assert_eq!(s.p50_ns, us(500));
        assert_eq!(s.p99_ns, us(990));
        assert_eq!(s.p999_ns, us(999));
    }

    /// Regression (PR 1 stale-cache path): a `record` issued *after* a
    /// quantile read must drop the cached sort, including when the new
    /// sample lands below the cached minimum or between cached ranks.
    #[test]
    fn record_after_quantile_read_invalidates_cached_sort() {
        let mut h = LatencyHist::new();
        for v in [us(10), us(20), us(30)] {
            h.record(v);
        }
        assert_eq!(h.quantile_ns(0.5), us(20)); // builds the cache
        h.record(us(1)); // below the cached min
        assert_eq!(h.quantile_ns(0.0), us(1));
        assert_eq!(h.quantile_ns(0.5), us(10));
        h.record(us(15)); // interior insert after another read
        assert_eq!(h.quantile_ns(0.5), us(15));
        assert_eq!(h.quantile_ns(1.0), us(30));
        // Every quantile must match a freshly-built histogram.
        let mut fresh = LatencyHist::new();
        for v in [us(10), us(20), us(30), us(1), us(15)] {
            fresh.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), fresh.quantile_ns(q), "q={q}");
        }
    }

    #[test]
    fn stream_index_and_bounds_tile_the_range() {
        // Every bucket's hi + 1 equals the next bucket's lo, and each value
        // maps into the bucket whose bounds contain it.
        for idx in 0..STREAM_BUCKETS - 1 {
            let (lo, hi) = StreamHist::bucket_bounds(idx);
            assert!(lo <= hi, "bucket {idx}");
            let (next_lo, _) = StreamHist::bucket_bounds(idx + 1);
            assert_eq!(hi.wrapping_add(1), next_lo, "gap after bucket {idx}");
        }
        for v in [0, 1, 31, 32, 33, 63, 64, 1000, us(7), ms(3), u64::MAX] {
            let idx = StreamHist::index(v);
            let (lo, hi) = StreamHist::bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} idx={idx} [{lo},{hi}]");
        }
        assert_eq!(
            StreamHist::index(u64::MAX),
            STREAM_BUCKETS - 1,
            "top value lands in the last bucket"
        );
    }

    #[test]
    fn stream_small_values_are_exact_and_moments_always_exact() {
        let mut h = StreamHist::new();
        for v in [3, 1, 4, 1, 5, 9, 2, 6] {
            h.record(v);
        }
        // Values < 32 get unit buckets: quantiles are exact.
        assert_eq!(h.quantile_ns(0.5), 3);
        assert_eq!(h.min_ns(), 1);
        assert_eq!(h.max_ns(), 9);
        assert_eq!(h.count(), 8);
        assert_eq!(h.mean_ns(), 31 / 8);
    }

    #[test]
    fn stream_quantiles_within_one_bucket_of_exact() {
        let mut s = StreamHist::new();
        let mut exact = LatencyHist::new();
        // A deliberately skewed mix: dense low band plus a long tail.
        for i in 0..5000u64 {
            let v = us(1) + i * 37;
            s.record(v);
            exact.record(v);
        }
        for i in 0..50u64 {
            let v = ms(1) + i * us(100);
            s.record(v);
            exact.record(v);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let e = exact.quantile_ns(q);
            let a = s.quantile_ns(q);
            let w = StreamHist::bucket_width(e);
            assert!(
                a.abs_diff(e) <= w,
                "q={q}: stream {a} vs exact {e}, bucket width {w}"
            );
        }
    }

    #[test]
    fn stream_merge_is_lossless_and_order_free() {
        let mut a = StreamHist::new();
        let mut b = StreamHist::new();
        let mut whole = StreamHist::new();
        for i in 0..1000u64 {
            let v = (i * i) % 100_000 + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            assert_eq!(m.nonzero_buckets(), whole.nonzero_buckets());
            assert_eq!(m.count(), whole.count());
            assert_eq!(m.min_ns(), whole.min_ns());
            assert_eq!(m.max_ns(), whole.max_ns());
            assert_eq!(m.mean_ns(), whole.mean_ns());
            assert_eq!(m.summary(), whole.summary());
        }
    }

    #[test]
    fn stream_empty_histogram_is_safe_everywhere() {
        let h = StreamHist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.p999_ns(), 0);
        assert_eq!(h.summary(), HistSummary::default());
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn tps_math() {
        assert_eq!(tps(1000, ms(500)), 2000.0);
        assert_eq!(tps(0, ms(500)), 0.0);
        assert_eq!(tps(5, 0), 0.0);
    }
}
