//! Latency accounting shared by the experiment engines and the metrics
//! registry. Moved here from `dc-core` so every layer (fabric upward) can
//! register histograms without a dependency cycle; `dc-core` re-exports the
//! types for compatibility.

use std::cell::RefCell;

use dc_sim::SimTime;

/// A latency histogram with exact aggregate moments and nearest-rank
/// quantiles over the raw samples.
///
/// Empty-histogram contract: every accessor (`min_ns`, `max_ns`, `mean_ns`,
/// `quantile_ns`, and the `summary()` struct) returns 0 when no sample has
/// been recorded — callers never see the `u64::MAX` sentinel used
/// internally for the running minimum.
#[derive(Debug, Clone, Default)]
pub struct LatencyHist {
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
    samples: Vec<u64>,
    /// Sorted copy of `samples`, built lazily on the first quantile query
    /// and invalidated by `record` — experiment reports ask for several
    /// quantiles back to back, and re-sorting per query made that O(k·n log n).
    sorted: RefCell<Option<Vec<u64>>>,
}

/// One-struct view of a histogram, used by the exporters and bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Minimum sample (0 when empty).
    pub min_ns: u64,
    /// Maximum sample (0 when empty).
    pub max_ns: u64,
    /// Mean (0 when empty).
    pub mean_ns: u64,
    /// Median by nearest rank (0 when empty).
    pub p50_ns: u64,
    /// 99th percentile by nearest rank (0 when empty).
    pub p99_ns: u64,
    /// 99.9th percentile by nearest rank (0 when empty).
    pub p999_ns: u64,
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            min_ns: u64::MAX,
            ..Default::default()
        }
    }

    /// Record one latency.
    pub fn record(&mut self, ns: SimTime) {
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.samples.push(ns);
        *self.sorted.borrow_mut() = None;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / self.count as u128) as u64
        }
    }

    /// Minimum sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Maximum sample (0 when empty — guarded like `min_ns`, rather than
    /// leaking whatever the raw field holds).
    pub fn max_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max_ns
        }
    }

    /// The q-quantile (0.0–1.0) by nearest-rank on the sorted samples.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.samples.is_empty() {
            return 0;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_unstable();
            v
        });
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median (nearest rank).
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.5)
    }

    /// 99th percentile (nearest rank).
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// 99.9th percentile (nearest rank).
    pub fn p999_ns(&self) -> u64 {
        self.quantile_ns(0.999)
    }

    /// Snapshot every headline statistic at once.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            min_ns: self.min_ns(),
            max_ns: self.max_ns(),
            mean_ns: self.mean_ns(),
            p50_ns: self.p50_ns(),
            p99_ns: self.p99_ns(),
            p999_ns: self.p999_ns(),
        }
    }
}

/// Throughput over a span: `completed / span`.
pub fn tps(completed: u64, span_ns: SimTime) -> f64 {
    if span_ns == 0 {
        return 0.0;
    }
    completed as f64 / (span_ns as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sim::time::{ms, us};

    #[test]
    fn moments_and_quantiles() {
        let mut h = LatencyHist::new();
        for v in [us(1), us(2), us(3), us(4), us(100)] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean_ns(), us(22));
        assert_eq!(h.min_ns(), us(1));
        assert_eq!(h.max_ns(), us(100));
        assert_eq!(h.quantile_ns(0.5), us(3));
        assert_eq!(h.quantile_ns(1.0), us(100));
        assert_eq!(h.quantile_ns(0.2), us(1));
    }

    #[test]
    fn repeated_quantile_queries_agree_and_track_new_samples() {
        let mut h = LatencyHist::new();
        for v in [us(5), us(1), us(9), us(3), us(7)] {
            h.record(v);
        }
        // Repeated queries hit the cached sort and must agree exactly.
        for _ in 0..3 {
            assert_eq!(h.quantile_ns(0.5), us(5));
            assert_eq!(h.quantile_ns(0.0), us(1));
            assert_eq!(h.quantile_ns(1.0), us(9));
        }
        // A new record invalidates the cache; queries see the new sample.
        h.record(us(11));
        assert_eq!(h.quantile_ns(1.0), us(11));
        assert_eq!(h.quantile_ns(0.5), us(5));
        // Cloned histograms answer independently and identically.
        let c = h.clone();
        assert_eq!(c.quantile_ns(0.5), h.quantile_ns(0.5));
        assert_eq!(c.quantile_ns(0.99), h.quantile_ns(0.99));
    }

    #[test]
    fn empty_histogram_is_safe_everywhere() {
        let h = LatencyHist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.p999_ns(), 0);
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn percentile_accessors_match_quantiles() {
        let mut h = LatencyHist::new();
        for i in 1..=1000u64 {
            h.record(us(i));
        }
        assert_eq!(h.p50_ns(), us(500));
        assert_eq!(h.p99_ns(), us(990));
        assert_eq!(h.p999_ns(), us(999));
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_ns, us(1));
        assert_eq!(s.max_ns, us(1000));
        assert_eq!(s.p50_ns, us(500));
        assert_eq!(s.p99_ns, us(990));
        assert_eq!(s.p999_ns, us(999));
    }

    #[test]
    fn tps_math() {
        assert_eq!(tps(1000, ms(500)), 2000.0);
        assert_eq!(tps(0, ms(500)), 0.0);
        assert_eq!(tps(5, 0), 0.0);
    }
}
