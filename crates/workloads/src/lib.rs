//! # dc-workloads — workload generators for the evaluation
//!
//! Deterministic (seeded) generators for every workload the paper's
//! evaluation uses:
//!
//! * [`zipf::Zipf`] — Zipf(α) document popularity, swept over
//!   α ∈ {0.9, 0.75, 0.5, 0.25} in Figure 8b and driving Figure 6.
//! * [`fileset::FileSet`] — document working sets (8k–64k uniform sizes in
//!   Figure 6).
//! * [`rubis::RubisMix`] — a RUBiS-like auction-site operation mix with
//!   divergent per-request CPU demand.
//! * [`storm::StormQuery`] — STORM-style record-selection queries
//!   (Figure 3b's 1K–100K record sweep).
//! * [`burst::BurstSchedule`] — bursty thread-load patterns for the
//!   monitoring accuracy experiment (Figure 8a).
//! * [`arrival::ArrivalProcess`] — seeded open-loop interarrival streams
//!   (Poisson and bursty MMPP-2) plus the allocation-free k-way
//!   [`arrival::MergedArrivals`] merge driving the at-scale web farm.

pub mod arrival;
pub mod burst;
pub mod fileset;
pub mod rubis;
pub mod storm;
pub mod zipf;

pub use arrival::{ArrivalKind, ArrivalProcess, BurstyCfg, MergedArrivals};
pub use burst::{BurstPhase, BurstSchedule};
pub use fileset::FileSet;
pub use rubis::{RubisMix, RubisOp};
pub use storm::StormQuery;
pub use zipf::Zipf;
