//! Document working sets for the caching experiments.
//!
//! Figure 6 sweeps uniform file sizes (8k/16k/32k/64k) over working sets
//! sized relative to the proxies' aggregate cache. The generator also
//! supports mixed-size sets for the ablation benches.

use serde::{Deserialize, Serialize};

/// A set of documents, identified by dense ids with per-document sizes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSet {
    sizes: Vec<usize>,
}

impl FileSet {
    /// `count` documents, all of `size` bytes (the Figure 6 configuration).
    pub fn uniform(count: usize, size: usize) -> FileSet {
        assert!(count > 0 && size > 0);
        FileSet {
            sizes: vec![size; count],
        }
    }

    /// A heavy-tailed mix: documents cycle through the given sizes.
    pub fn cycled(count: usize, sizes: &[usize]) -> FileSet {
        assert!(count > 0 && !sizes.is_empty());
        FileSet {
            sizes: (0..count).map(|i| sizes[i % sizes.len()]).collect(),
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size of document `id`.
    pub fn size(&self, id: usize) -> usize {
        self.sizes[id]
    }

    /// Total bytes across all documents.
    pub fn total_bytes(&self) -> usize {
        self.sizes.iter().sum()
    }

    /// Deterministic content byte for (document, offset) — lets transfers be
    /// verified end to end without storing the working set.
    pub fn content_byte(id: usize, offset: usize) -> u8 {
        ((id.wrapping_mul(131) ^ offset.wrapping_mul(31)) % 251) as u8
    }

    /// Materialize the first `n` bytes of document `id`'s content.
    pub fn content(&self, id: usize, n: usize) -> Vec<u8> {
        assert!(n <= self.size(id));
        (0..n).map(|off| Self::content_byte(id, off)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_set_totals() {
        let fs = FileSet::uniform(100, 8192);
        assert_eq!(fs.len(), 100);
        assert_eq!(fs.size(99), 8192);
        assert_eq!(fs.total_bytes(), 100 * 8192);
    }

    #[test]
    fn cycled_sizes_repeat() {
        let fs = FileSet::cycled(5, &[1, 2, 3]);
        assert_eq!(
            (0..5).map(|i| fs.size(i)).collect::<Vec<_>>(),
            vec![1, 2, 3, 1, 2]
        );
    }

    #[test]
    fn content_is_deterministic_and_varies() {
        let a = FileSet::content_byte(3, 7);
        assert_eq!(a, FileSet::content_byte(3, 7));
        let fs = FileSet::uniform(2, 64);
        let c0 = fs.content(0, 64);
        let c1 = fs.content(1, 64);
        assert_ne!(c0, c1);
    }
}
