//! RUBiS-like auction-site request mix.
//!
//! The paper's Figure 8b hosts two web services, one of them "the RUBiS
//! auction benchmark simulating an e-commerce website developed by Rice
//! University". We reproduce its browsing mix: a weighted set of operation
//! types with distinct CPU demand and response sizes, so back-end load is
//! *divergent* across requests — the property that makes fine-grained
//! monitoring matter.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One auction-site operation type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RubisOp {
    /// Front page / static browse.
    Home,
    /// Category listing (DB scan, mid cost).
    BrowseCategories,
    /// Item detail view (indexed lookup).
    ViewItem,
    /// Bid history for an item (join, expensive).
    ViewBidHistory,
    /// Place a bid (write + validation, expensive and bursty).
    PlaceBid,
    /// Seller/user info page.
    ViewUserInfo,
    /// Full-text-ish search over items (most expensive).
    SearchItems,
}

impl RubisOp {
    /// CPU demand on the application server, nanoseconds.
    pub fn cpu_ns(self) -> u64 {
        match self {
            RubisOp::Home => 120_000,
            RubisOp::BrowseCategories => 450_000,
            RubisOp::ViewItem => 250_000,
            RubisOp::ViewBidHistory => 900_000,
            RubisOp::PlaceBid => 1_300_000,
            RubisOp::ViewUserInfo => 300_000,
            RubisOp::SearchItems => 2_200_000,
        }
    }

    /// Response payload size, bytes.
    pub fn response_bytes(self) -> usize {
        match self {
            RubisOp::Home => 6 * 1024,
            RubisOp::BrowseCategories => 12 * 1024,
            RubisOp::ViewItem => 8 * 1024,
            RubisOp::ViewBidHistory => 10 * 1024,
            RubisOp::PlaceBid => 2 * 1024,
            RubisOp::ViewUserInfo => 7 * 1024,
            RubisOp::SearchItems => 16 * 1024,
        }
    }
}

/// Weighted sampler over the RUBiS browsing/bidding mix (weights follow the
/// benchmark's default transition-matrix steady state, coarsened).
#[derive(Debug, Clone)]
pub struct RubisMix {
    table: Vec<(RubisOp, u32)>,
    total: u32,
}

impl Default for RubisMix {
    fn default() -> Self {
        Self::new()
    }
}

impl RubisMix {
    /// The default mix.
    pub fn new() -> RubisMix {
        let table = vec![
            (RubisOp::Home, 16),
            (RubisOp::BrowseCategories, 22),
            (RubisOp::ViewItem, 28),
            (RubisOp::ViewBidHistory, 8),
            (RubisOp::PlaceBid, 6),
            (RubisOp::ViewUserInfo, 10),
            (RubisOp::SearchItems, 10),
        ];
        let total = table.iter().map(|&(_, w)| w).sum();
        RubisMix { table, total }
    }

    /// Sample one operation.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> RubisOp {
        let mut x = rng.gen_range(0..self.total);
        for &(op, w) in &self.table {
            if x < w {
                return op;
            }
            x -= w;
        }
        unreachable!("weights exhausted")
    }

    /// Mean CPU demand of the mix, nanoseconds.
    pub fn mean_cpu_ns(&self) -> u64 {
        let wsum: u64 = self
            .table
            .iter()
            .map(|&(op, w)| op.cpu_ns() * w as u64)
            .sum();
        wsum / self.total as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sampling_respects_weights_roughly() {
        let mix = RubisMix::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut bids = 0usize;
        let mut views = 0usize;
        for _ in 0..20_000 {
            match mix.sample(&mut rng) {
                RubisOp::PlaceBid => bids += 1,
                RubisOp::ViewItem => views += 1,
                _ => {}
            }
        }
        // ViewItem (28) vs PlaceBid (6): ratio ≈ 4.7.
        let ratio = views as f64 / bids as f64;
        assert!(ratio > 3.0 && ratio < 7.0, "ratio {ratio}");
    }

    #[test]
    fn cpu_demand_is_divergent() {
        // The motivation for fine-grained monitoring: op costs span more
        // than an order of magnitude.
        let cheapest = RubisOp::Home.cpu_ns();
        let dearest = RubisOp::SearchItems.cpu_ns();
        assert!(dearest > 15 * cheapest);
    }

    #[test]
    fn mean_cpu_is_between_extremes() {
        let m = RubisMix::new().mean_cpu_ns();
        assert!(m > RubisOp::Home.cpu_ns());
        assert!(m < RubisOp::SearchItems.cpu_ns());
    }
}
