//! Bursty thread-load patterns for the monitoring experiments.
//!
//! Figure 8a plots the *actual* number of threads on a loaded back-end node
//! against what each monitoring scheme reports over time. The load pattern
//! is a deterministic schedule of bursts: phases during which `threads`
//! compute-bound threads run, separated by quieter phases.

use serde::{Deserialize, Serialize};

/// One phase of the load schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstPhase {
    /// Concurrent compute threads during the phase.
    pub threads: u32,
    /// Phase duration in nanoseconds.
    pub duration_ns: u64,
}

/// A repeating schedule of load phases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstSchedule {
    phases: Vec<BurstPhase>,
}

impl BurstSchedule {
    /// Build from explicit phases.
    pub fn new(phases: Vec<BurstPhase>) -> BurstSchedule {
        assert!(!phases.is_empty());
        assert!(phases.iter().all(|p| p.duration_ns > 0));
        BurstSchedule { phases }
    }

    /// The Figure 8a pattern: alternating quiet (1 thread), busy (6), spike
    /// (12), busy (4) phases of 50 ms each.
    pub fn fig8a() -> BurstSchedule {
        BurstSchedule::new(vec![
            BurstPhase {
                threads: 1,
                duration_ns: 50_000_000,
            },
            BurstPhase {
                threads: 6,
                duration_ns: 50_000_000,
            },
            BurstPhase {
                threads: 12,
                duration_ns: 50_000_000,
            },
            BurstPhase {
                threads: 4,
                duration_ns: 50_000_000,
            },
        ])
    }

    /// Length of one full cycle.
    pub fn cycle_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ns).sum()
    }

    /// The phases in order.
    pub fn phases(&self) -> &[BurstPhase] {
        &self.phases
    }

    /// Thread count in force at time `t` (schedule repeats forever).
    pub fn threads_at(&self, t: u64) -> u32 {
        let mut rem = t % self.cycle_ns();
        for p in &self.phases {
            if rem < p.duration_ns {
                return p.threads;
            }
            rem -= p.duration_ns;
        }
        unreachable!("time past cycle end")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_at_follows_schedule_and_wraps() {
        let s = BurstSchedule::new(vec![
            BurstPhase {
                threads: 2,
                duration_ns: 10,
            },
            BurstPhase {
                threads: 5,
                duration_ns: 20,
            },
        ]);
        assert_eq!(s.cycle_ns(), 30);
        assert_eq!(s.threads_at(0), 2);
        assert_eq!(s.threads_at(9), 2);
        assert_eq!(s.threads_at(10), 5);
        assert_eq!(s.threads_at(29), 5);
        assert_eq!(s.threads_at(30), 2); // wrapped
        assert_eq!(s.threads_at(45), 5);
    }

    #[test]
    fn fig8a_pattern_shape() {
        let s = BurstSchedule::fig8a();
        assert_eq!(s.cycle_ns(), 200_000_000);
        let peaks: Vec<u32> = s.phases().iter().map(|p| p.threads).collect();
        assert_eq!(peaks, vec![1, 6, 12, 4]);
    }
}
