//! Open-loop arrival processes for at-scale load generation.
//!
//! Closed-loop clients (issue → wait → think → issue) throttle themselves
//! exactly when the system saturates, hiding overload collapse. The
//! at-scale web-farm scenario therefore drives *open-loop* arrivals: each
//! simulated client emits requests on its own clock regardless of how the
//! farm is doing, so offered load past saturation translates into queueing,
//! shedding, and tail growth instead of silent back-pressure.
//!
//! Two interarrival processes are provided:
//!
//! * [`ArrivalProcess::poisson`] — exponential interarrivals (a Poisson
//!   process). The superposition of many independent per-client Poisson
//!   streams is itself Poisson at the summed rate, which
//!   [`MergedArrivals`] relies on and the proptests verify.
//! * [`ArrivalProcess::bursty`] — a two-state Markov-modulated Poisson
//!   process (MMPP-2): the client alternates between a *calm* and a
//!   *burst* phase with exponentially distributed dwell times, emitting at
//!   a low rate in calm phases and `burst_intensity`× that in bursts. The
//!   phase rates are normalised so the long-run mean rate equals the
//!   requested one, but interarrival variance exceeds Poisson's
//!   (coefficient of variation > 1) — the squared-CV is what drives tail
//!   latency at equal utilisation.
//!
//! Contract (see DESIGN.md "Open-loop generators"): generators are seeded
//! and byte-deterministic — the same `(seed, rate, kind)` yields the same
//! arrival stream forever; `next_ns` never allocates and returns
//! non-decreasing absolute virtual-time nanoseconds; all state lives in a
//! few machine words so a 10^6-client population stays cheap. The internal
//! RNG is a dedicated splitmix64 stream per process (not `StdRng`, whose
//! per-instance state would cost ~250 MB across a million clients).

/// Compact deterministic RNG: one splitmix64 stream per generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitMix(u64);

impl SplitMix {
    fn new(seed: u64) -> SplitMix {
        SplitMix(seed)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponential with the given mean (rejects the u = 0 endpoint so
    /// `ln` never sees zero).
    #[inline]
    fn next_exp(&mut self, mean: f64) -> f64 {
        let u = self.next_f64();
        -(1.0 - u).ln() * mean
    }
}

/// Shape of the bursty (MMPP-2) process. All knobs are normalised so the
/// long-run mean rate still equals the rate handed to
/// [`ArrivalProcess::bursty`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyCfg {
    /// Burst-phase rate as a multiple of the calm-phase rate (> 1).
    pub burst_intensity: f64,
    /// Mean dwell time in the calm phase, ns.
    pub calm_mean_ns: u64,
    /// Mean dwell time in the burst phase, ns.
    pub burst_mean_ns: u64,
}

impl Default for BurstyCfg {
    fn default() -> Self {
        BurstyCfg {
            burst_intensity: 9.0,
            calm_mean_ns: 160_000_000,
            burst_mean_ns: 40_000_000,
        }
    }
}

/// Which interarrival process a generator runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// Exponential interarrivals at the configured rate.
    Poisson,
    /// Two-state MMPP with the given burst shape.
    Bursty(BurstyCfg),
}

/// One client's seeded open-loop arrival stream.
///
/// `next_ns` returns the absolute virtual time of the next arrival,
/// monotone non-decreasing, without allocating. State is ~48 bytes.
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: SplitMix,
    /// Current virtual time (last arrival), ns.
    now_ns: f64,
    /// Rate of the *current phase*, arrivals per ns.
    phase_rate: f64,
    /// Calm-phase rate, arrivals per ns (equals the mean rate for Poisson).
    calm_rate: f64,
    /// Burst-phase rate, arrivals per ns (0 marks a pure Poisson process).
    burst_rate: f64,
    /// End of the current phase, ns (`f64::INFINITY` for Poisson).
    phase_end_ns: f64,
    /// Mean dwell times (calm, burst), ns.
    dwell_ns: (f64, f64),
    /// Whether the process is currently in a burst phase.
    in_burst: bool,
}

impl ArrivalProcess {
    /// A Poisson process emitting `rate_rps` arrivals per (virtual) second.
    pub fn poisson(seed: u64, rate_rps: f64) -> ArrivalProcess {
        assert!(rate_rps > 0.0 && rate_rps.is_finite(), "invalid rate");
        let rate_per_ns = rate_rps / 1e9;
        ArrivalProcess {
            rng: SplitMix::new(seed),
            now_ns: 0.0,
            phase_rate: rate_per_ns,
            calm_rate: rate_per_ns,
            burst_rate: 0.0,
            phase_end_ns: f64::INFINITY,
            dwell_ns: (0.0, 0.0),
            in_burst: false,
        }
    }

    /// An MMPP-2 process with long-run mean rate `rate_rps`.
    ///
    /// With calm/burst dwell means `Tc`/`Tb` and burst intensity `k`, the
    /// calm rate solves `(rc·Tc + k·rc·Tb) / (Tc + Tb) = rate`, so the
    /// time-averaged rate is exactly the requested one while bursts run
    /// `k`× hotter than calms.
    pub fn bursty(seed: u64, rate_rps: f64, cfg: BurstyCfg) -> ArrivalProcess {
        assert!(rate_rps > 0.0 && rate_rps.is_finite(), "invalid rate");
        assert!(cfg.burst_intensity > 1.0, "burst must run hotter than calm");
        assert!(cfg.calm_mean_ns > 0 && cfg.burst_mean_ns > 0);
        let rate_per_ns = rate_rps / 1e9;
        let (tc, tb) = (cfg.calm_mean_ns as f64, cfg.burst_mean_ns as f64);
        let calm_rate = rate_per_ns * (tc + tb) / (tc + cfg.burst_intensity * tb);
        let mut p = ArrivalProcess {
            rng: SplitMix::new(seed),
            now_ns: 0.0,
            phase_rate: calm_rate,
            calm_rate,
            burst_rate: calm_rate * cfg.burst_intensity,
            phase_end_ns: 0.0,
            dwell_ns: (tc, tb),
            in_burst: false,
        };
        p.phase_end_ns = p.rng.next_exp(tc);
        p
    }

    /// Absolute virtual time of the next arrival, ns. Non-decreasing.
    ///
    /// MMPP phase changes exploit memorylessness: an exponential candidate
    /// drawn at the old rate that crosses the phase boundary is discarded
    /// and redrawn from the boundary at the new rate, which is exact (not
    /// an approximation) for exponential interarrivals.
    #[inline]
    pub fn next_ns(&mut self) -> u64 {
        loop {
            let candidate = self.now_ns + self.rng.next_exp(1.0 / self.phase_rate);
            if candidate <= self.phase_end_ns {
                self.now_ns = candidate;
                return candidate as u64;
            }
            // Cross into the next phase and redraw from its start.
            self.now_ns = self.phase_end_ns;
            self.in_burst = !self.in_burst;
            let (dwell, rate) = if self.in_burst {
                (self.dwell_ns.1, self.burst_rate)
            } else {
                (self.dwell_ns.0, self.calm_rate)
            };
            self.phase_rate = rate;
            self.phase_end_ns = self.now_ns + self.rng.next_exp(dwell);
        }
    }
}

/// Deterministic k-way merge of per-client arrival streams.
///
/// Holds one pending arrival per stream in a binary min-heap keyed on
/// `(time, stream index)` — the index tie-break keeps simultaneous
/// arrivals in a fixed order. After construction, `next` is
/// allocation-free: pop the minimum, refill from that stream, sift.
pub struct MergedArrivals {
    /// Min-heap of (next arrival time, stream index).
    heap: Vec<(u64, u32)>,
    streams: Vec<ArrivalProcess>,
}

impl MergedArrivals {
    /// Merge the given streams (one heap prime per stream; the only
    /// allocations this type ever performs happen here).
    pub fn new(mut streams: Vec<ArrivalProcess>) -> MergedArrivals {
        let mut heap: Vec<(u64, u32)> = streams
            .iter_mut()
            .enumerate()
            .map(|(i, s)| (s.next_ns(), i as u32))
            .collect();
        // Floyd heap construction: sift down from the last parent.
        if heap.len() > 1 {
            for i in (0..heap.len() / 2).rev() {
                sift_down(&mut heap, i);
            }
        }
        MergedArrivals { heap, streams }
    }

    /// Number of merged streams.
    pub fn streams(&self) -> usize {
        self.streams.len()
    }

    /// Pop the next arrival: `(time_ns, stream index)`. Times are globally
    /// non-decreasing. Panics if constructed with zero streams.
    ///
    /// Not `Iterator::next`: the merged stream is infinite, so an
    /// `Option` wrapper would only add an `unwrap` at every call site.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> (u64, u32) {
        let (t, idx) = self.heap[0];
        let refill = self.streams[idx as usize].next_ns();
        self.heap[0] = (refill, idx);
        sift_down(&mut self.heap, 0);
        (t, idx)
    }

    /// Time of the next arrival without consuming it.
    pub fn peek_ns(&self) -> u64 {
        self.heap[0].0
    }
}

#[inline]
fn sift_down(heap: &mut [(u64, u32)], mut i: usize) {
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut smallest = i;
        if l < heap.len() && heap[l] < heap[smallest] {
            smallest = l;
        }
        if r < heap.len() && heap[r] < heap[smallest] {
            smallest = r;
        }
        if smallest == i {
            return;
        }
        heap.swap(i, smallest);
        i = smallest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interarrivals(mut p: ArrivalProcess, n: usize) -> Vec<u64> {
        let mut prev = 0u64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let t = p.next_ns();
            assert!(t >= prev, "arrival time went backwards");
            out.push(t - prev);
            prev = t;
        }
        out
    }

    fn mean_cv(gaps: &[u64]) -> (f64, f64) {
        let n = gaps.len() as f64;
        let mean = gaps.iter().map(|&g| g as f64).sum::<f64>() / n;
        let var = gaps
            .iter()
            .map(|&g| {
                let d = g as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var.sqrt() / mean)
    }

    #[test]
    fn poisson_mean_matches_rate_and_cv_is_one() {
        // 1000 rps → mean gap 1 ms.
        let gaps = interarrivals(ArrivalProcess::poisson(7, 1000.0), 20_000);
        let (mean, cv) = mean_cv(&gaps);
        assert!((mean - 1e6).abs() < 0.03 * 1e6, "mean {mean}");
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn bursty_preserves_mean_rate_but_is_overdispersed() {
        let gaps = interarrivals(
            ArrivalProcess::bursty(11, 1000.0, BurstyCfg::default()),
            60_000,
        );
        let (mean, cv) = mean_cv(&gaps);
        assert!((mean - 1e6).abs() < 0.06 * 1e6, "mean {mean}");
        assert!(cv > 1.3, "bursty stream should be overdispersed, cv {cv}");
    }

    #[test]
    fn streams_are_byte_identical_per_seed() {
        let mks: [fn(u64) -> ArrivalProcess; 2] = [
            |s| ArrivalProcess::poisson(s, 250.0),
            |s| ArrivalProcess::bursty(s, 250.0, BurstyCfg::default()),
        ];
        for mk in mks {
            let (mut a, mut b) = (mk(42), mk(42));
            for _ in 0..5_000 {
                assert_eq!(a.next_ns(), b.next_ns());
            }
            let (mut c, mut d) = (mk(42), mk(43));
            let diverged = (0..5_000).any(|_| c.next_ns() != d.next_ns());
            assert!(diverged, "different seeds produced identical streams");
        }
    }

    #[test]
    fn merge_is_ordered_and_preserves_global_rate() {
        let streams: Vec<ArrivalProcess> = (0..64)
            .map(|i| ArrivalProcess::poisson(1000 + i, 50.0))
            .collect();
        let mut m = MergedArrivals::new(streams);
        assert_eq!(m.streams(), 64);
        let mut prev = 0u64;
        let mut count = 0u64;
        let mut last = 0u64;
        let mut seen = [false; 64];
        while m.peek_ns() < 10_000_000_000 {
            let (t, idx) = m.next();
            assert!(t >= prev, "merge emitted out of order");
            prev = t;
            last = t;
            seen[idx as usize] = true;
            count += 1;
        }
        // 64 × 50 rps over 10 s ≈ 32_000 arrivals.
        let rate = count as f64 / (last as f64 / 1e9);
        assert!((rate - 3200.0).abs() < 0.05 * 3200.0, "rate {rate}");
        assert!(seen.iter().all(|&s| s), "a stream never surfaced");
    }

    #[test]
    fn merged_stream_equals_manual_merge() {
        let mk = || -> Vec<ArrivalProcess> {
            (0..8)
                .map(|i| ArrivalProcess::poisson(77 + i, 100.0))
                .collect()
        };
        let mut merged = MergedArrivals::new(mk());
        let mut manual: Vec<Vec<u64>> = mk()
            .into_iter()
            .map(|mut p| (0..200).map(|_| p.next_ns()).collect())
            .collect();
        for _ in 0..1_000 {
            let (t, idx) = merged.next();
            let lane = &mut manual[idx as usize];
            assert_eq!(t, lane.remove(0));
        }
    }
}
