//! STORM-like data-intensive query workload.
//!
//! Figure 3b runs "distributed STORM" — a middleware for data-intensive
//! applications that ships query results from data nodes to clients — over
//! DDSS versus traditional sockets, sweeping the number of records selected
//! (1K … 100K). We model the same shape: a query selects `records` records
//! of `record_bytes` each from a data node after a per-record scan cost.

use serde::{Deserialize, Serialize};

/// Parameters of one STORM query workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormQuery {
    /// Records selected by the query.
    pub records: usize,
    /// Bytes per record (STORM's evaluation used ~100-byte tuples).
    pub record_bytes: usize,
    /// CPU scan cost per record at the data node.
    pub scan_ns_per_record: u64,
}

impl StormQuery {
    /// The record-count sweep of Figure 3b.
    pub const FIG3B_RECORDS: [usize; 4] = [1_000, 5_000, 10_000, 100_000];

    /// A query selecting `records` records with defaults matching the
    /// paper's setup.
    pub fn with_records(records: usize) -> StormQuery {
        StormQuery {
            records,
            record_bytes: 100,
            scan_ns_per_record: 600,
        }
    }

    /// Total result payload in bytes.
    pub fn result_bytes(&self) -> usize {
        self.records * self.record_bytes
    }

    /// Total scan CPU at the data node.
    pub fn scan_ns(&self) -> u64 {
        self.records as u64 * self.scan_ns_per_record
    }

    /// Split the result into transfer chunks of at most `chunk` bytes
    /// (DDSS segments / socket messages).
    pub fn chunks(&self, chunk: usize) -> Vec<usize> {
        assert!(chunk > 0);
        let total = self.result_bytes();
        let mut out = Vec::with_capacity(total.div_ceil(chunk));
        let mut left = total;
        while left > 0 {
            let n = left.min(chunk);
            out.push(n);
            left -= n;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale_with_records() {
        let q = StormQuery::with_records(1_000);
        assert_eq!(q.result_bytes(), 100_000);
        assert_eq!(q.scan_ns(), 600_000);
        let big = StormQuery::with_records(100_000);
        assert_eq!(big.result_bytes(), 100 * q.result_bytes());
    }

    #[test]
    fn chunking_covers_exactly() {
        let q = StormQuery::with_records(1_000); // 100_000 bytes
        let chunks = q.chunks(32 * 1024);
        assert_eq!(chunks.iter().sum::<usize>(), 100_000);
        assert_eq!(chunks.len(), 4); // 3 × 32k + remainder
        assert!(chunks[..3].iter().all(|&c| c == 32 * 1024));
        assert_eq!(chunks[3], 100_000 - 3 * 32 * 1024);
    }

    #[test]
    fn sweep_matches_paper() {
        assert_eq!(StormQuery::FIG3B_RECORDS, [1_000, 5_000, 10_000, 100_000]);
    }
}
