//! Zipf document-popularity sampler.
//!
//! Web-document popularity follows a Zipf distribution: the i-th most
//! popular of `n` documents is requested with probability proportional to
//! `1 / i^alpha`. The paper's Figure 8b sweeps `alpha` over
//! {0.9, 0.75, 0.5, 0.25}: higher alpha means more temporal locality (a few
//! hot documents), lower alpha a flatter, cache-hostile distribution.

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` via inverse-CDF binary search.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `alpha ≥ 0`.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid alpha");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().unwrap() = 1.0;
        Zipf { cdf, alpha }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(alpha: f64, n: usize, draws: usize) -> Vec<usize> {
        let z = Zipf::new(n, alpha);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn high_alpha_concentrates_on_head() {
        let h = histogram(0.9, 100, 20_000);
        // Rank 0 should dominate rank 50 by a large factor.
        assert!(h[0] > 10 * h[50].max(1), "h0={} h50={}", h[0], h[50]);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let h = histogram(0.0, 10, 50_000);
        let expect = 5_000.0;
        for (i, &c) in h.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "rank {i} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn lower_alpha_flattens_distribution() {
        let hot_share = |alpha: f64| {
            let h = histogram(alpha, 1000, 20_000);
            let head: usize = h[..10].iter().sum();
            head as f64 / 20_000.0
        };
        let s09 = hot_share(0.9);
        let s05 = hot_share(0.5);
        let s025 = hot_share(0.25);
        assert!(s09 > s05 && s05 > s025, "{s09} {s05} {s025}");
    }

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(50, 0.75);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..50 {
            assert!(
                z.pmf(i) <= z.pmf(i - 1) + 1e-12,
                "pmf not decreasing at {i}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 0.9);
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
