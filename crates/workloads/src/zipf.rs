//! Zipf document-popularity sampler.
//!
//! Web-document popularity follows a Zipf distribution: the i-th most
//! popular of `n` documents is requested with probability proportional to
//! `1 / i^alpha`. The paper's Figure 8b sweeps `alpha` over
//! {0.9, 0.75, 0.5, 0.25}: higher alpha means more temporal locality (a few
//! hot documents), lower alpha a flatter, cache-hostile distribution.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use rand::Rng;

/// A Zipf(α) sampler over ranks `0..n` via inverse-CDF binary search.
///
/// The inverse-CDF table is immutable and shared: [`Zipf::new`] consults a
/// process-wide cache keyed on `(n, α)`, so building a sampler per client
/// across a 10^6-client population costs one `O(n)` table build total (plus
/// an `Arc` clone per client) instead of `O(n)` work and memory each.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Arc<[f64]>,
    alpha: f64,
}

/// Process-wide table cache. α is keyed by its bit pattern — two α values
/// share a table iff they are the same f64, which is exactly the criterion
/// for their tables being identical.
type TableCache = Mutex<HashMap<(usize, u64), Arc<[f64]>>>;

fn table_cache() -> &'static TableCache {
    static CACHE: OnceLock<TableCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn build_cdf(n: usize, alpha: f64) -> Arc<[f64]> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for i in 1..=n {
        acc += 1.0 / (i as f64).powf(alpha);
        cdf.push(acc);
    }
    let total = acc;
    for v in &mut cdf {
        *v /= total;
    }
    // Guard against floating-point shortfall at the top.
    *cdf.last_mut().unwrap() = 1.0;
    cdf.into()
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `alpha ≥ 0`, sharing
    /// the inverse-CDF table with every other sampler of the same shape.
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid alpha");
        let cdf = table_cache()
            .lock()
            .expect("zipf table cache poisoned")
            .entry((n, alpha.to_bits()))
            .or_insert_with(|| build_cdf(n, alpha))
            .clone();
        Zipf { cdf, alpha }
    }

    /// Build a sampler with a private table, bypassing the shared cache.
    /// Exists so tests can pin cached and uncached samplers to identical
    /// behaviour; prefer [`Zipf::new`].
    pub fn uncached(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf over zero items");
        assert!(alpha >= 0.0 && alpha.is_finite(), "invalid alpha");
        Zipf {
            cdf: build_cdf(n, alpha),
            alpha,
        }
    }

    /// Number of items.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sample_u(rng.gen())
    }

    /// Sample from an externally supplied uniform `u ∈ [0, 1)`. Lets
    /// callers with their own compact RNG (the open-loop drivers) sample
    /// without implementing `rand::Rng`.
    #[inline]
    pub fn sample_u(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Cumulative probability mass of ranks `0..=i` — the analytic hit rate
    /// of a cache holding exactly the `i + 1` hottest documents.
    pub fn cdf(&self, i: usize) -> f64 {
        self.cdf[i.min(self.cdf.len() - 1)]
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(alpha: f64, n: usize, draws: usize) -> Vec<usize> {
        let z = Zipf::new(n, alpha);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut h = vec![0usize; n];
        for _ in 0..draws {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn high_alpha_concentrates_on_head() {
        let h = histogram(0.9, 100, 20_000);
        // Rank 0 should dominate rank 50 by a large factor.
        assert!(h[0] > 10 * h[50].max(1), "h0={} h50={}", h[0], h[50]);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let h = histogram(0.0, 10, 50_000);
        let expect = 5_000.0;
        for (i, &c) in h.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.1, "rank {i} count {c} deviates {dev:.3}");
        }
    }

    #[test]
    fn lower_alpha_flattens_distribution() {
        let hot_share = |alpha: f64| {
            let h = histogram(alpha, 1000, 20_000);
            let head: usize = h[..10].iter().sum();
            head as f64 / 20_000.0
        };
        let s09 = hot_share(0.9);
        let s05 = hot_share(0.5);
        let s025 = hot_share(0.25);
        assert!(s09 > s05 && s05 > s025, "{s09} {s05} {s025}");
    }

    #[test]
    fn pmf_sums_to_one_and_is_monotone() {
        let z = Zipf::new(50, 0.75);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..50 {
            assert!(
                z.pmf(i) <= z.pmf(i - 1) + 1e-12,
                "pmf not decreasing at {i}"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(100, 0.9);
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn cached_and_uncached_samplers_are_identical() {
        // The shared-table fix must not change a single sample: pin the
        // cached sampler against a freshly built private table, across two
        // cache hits (first build and shared reuse).
        let first = Zipf::new(777, 0.85);
        let reused = Zipf::new(777, 0.85);
        let private = Zipf::uncached(777, 0.85);
        assert!(
            Arc::ptr_eq(&first.cdf, &reused.cdf),
            "same (n, alpha) must share one table"
        );
        let mut ra = rand::rngs::StdRng::seed_from_u64(9);
        let mut rb = rand::rngs::StdRng::seed_from_u64(9);
        let mut rc = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..2_000 {
            let (a, b, c) = (
                first.sample(&mut ra),
                reused.sample(&mut rb),
                private.sample(&mut rc),
            );
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        for i in 0..777 {
            assert_eq!(first.pmf(i), private.pmf(i));
        }
    }

    #[test]
    fn sample_u_matches_rng_sampling() {
        let z = Zipf::new(64, 0.9);
        for u in [0.0, 0.1, 0.5, 0.937, 0.999999] {
            let r = z.sample_u(u);
            assert!(r < 64);
        }
        assert_eq!(z.sample_u(0.0), 0, "u=0 must map to the hottest rank");
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 0.9);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
