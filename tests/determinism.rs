//! Determinism guarantees: the same seed and configuration produce
//! bit-identical results — the property that makes every number in
//! EXPERIMENTS.md reproducible.

use nextgen_datacenter::coopcache::CacheScheme;
use nextgen_datacenter::core::{run_hosting, run_webfarm, HostingCfg, WebFarmCfg};
use nextgen_datacenter::fabric::FaultConfig;
use nextgen_datacenter::resmon::MonitorScheme;

#[test]
fn webfarm_is_bit_identical_across_runs() {
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Hybcc,
        proxies: 3,
        app_nodes: 2,
        num_docs: 128,
        doc_size: 16 * 1024,
        requests: 900,
        seed: 0xDEC0DE,
        ..WebFarmCfg::default()
    };
    let a = run_webfarm(&cfg);
    let b = run_webfarm(&cfg);
    assert_eq!(a.tps.to_bits(), b.tps.to_bits());
    assert_eq!(a.mean_latency_ns, b.mean_latency_ns);
    assert_eq!(a.p99_latency_ns, b.p99_latency_ns);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.span_ns, b.span_ns);
}

#[test]
fn webfarm_seed_changes_results() {
    let base = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 600,
        num_docs: 128,
        seed: 1,
        ..WebFarmCfg::default()
    };
    let mut other = base.clone();
    other.seed = 2;
    let a = run_webfarm(&base);
    let b = run_webfarm(&other);
    // Different request streams ⇒ different fine-grained outcomes.
    assert_ne!(
        (a.mean_latency_ns, a.cache.local_hits),
        (b.mean_latency_ns, b.cache.local_hits)
    );
}

#[test]
fn hosting_is_bit_identical_across_runs() {
    let cfg = HostingCfg {
        scheme: MonitorScheme::ERdmaSync,
        backends: 3,
        clients: 15,
        requests: 700,
        seed: 77,
        ..HostingCfg::default()
    };
    let a = run_hosting(&cfg);
    let b = run_hosting(&cfg);
    assert_eq!(a.tps.to_bits(), b.tps.to_bits());
    assert_eq!(a.mean_latency_ns, b.mean_latency_ns);
    assert_eq!(a.span_ns, b.span_ns);
}

/// The fault schedule is part of the seed space: the same (workload seed,
/// fault seed) pair reproduces every number bit-for-bit even while nodes
/// crash, messages drop, and links inflate mid-run.
#[test]
fn webfarm_under_faults_is_bit_identical_per_fault_seed() {
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 700,
        num_docs: 96,
        seed: 5,
        faults: Some((
            0xFA_017,
            FaultConfig {
                drop_prob: 0.05,
                ..FaultConfig::default()
            },
        )),
        ..WebFarmCfg::default()
    };
    let a = run_webfarm(&cfg);
    let b = run_webfarm(&cfg);
    assert_eq!(a.tps.to_bits(), b.tps.to_bits());
    assert_eq!(a.mean_latency_ns, b.mean_latency_ns);
    assert_eq!(a.p99_latency_ns, b.p99_latency_ns);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.span_ns, b.span_ns);
}

#[test]
fn webfarm_fault_seed_changes_results() {
    let base = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 700,
        num_docs: 96,
        seed: 5,
        faults: Some((1, FaultConfig::default())),
        ..WebFarmCfg::default()
    };
    let mut other = base.clone();
    other.faults = Some((2, FaultConfig::default()));
    let a = run_webfarm(&base);
    let b = run_webfarm(&other);
    // Different crash/drop/latency schedules ⇒ different fine-grained timing.
    assert_ne!(
        (a.mean_latency_ns, a.span_ns),
        (b.mean_latency_ns, b.span_ns),
        "fault seed had no observable effect"
    );
}

#[test]
fn hosting_under_faults_is_bit_identical_per_fault_seed() {
    let cfg = HostingCfg {
        scheme: MonitorScheme::RdmaSync,
        backends: 3,
        clients: 15,
        requests: 700,
        seed: 77,
        faults: Some((
            0xBEE,
            FaultConfig {
                drop_prob: 0.05,
                ..FaultConfig::default()
            },
        )),
        ..HostingCfg::default()
    };
    let a = run_hosting(&cfg);
    let b = run_hosting(&cfg);
    assert_eq!(a.tps.to_bits(), b.tps.to_bits());
    assert_eq!(a.mean_latency_ns, b.mean_latency_ns);
    assert_eq!(a.p99_latency_ns, b.p99_latency_ns);
    assert_eq!(a.span_ns, b.span_ns);
}

#[test]
fn virtual_time_is_host_independent() {
    // A fixed protocol exchange lands on exact calibrated nanoseconds: the
    // numbers come from the model, never from the host clock.
    use nextgen_datacenter::fabric::{Cluster, FabricModel, NodeId, RemoteAddr};
    use nextgen_datacenter::sim::Sim;
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
    let r = cluster.register(NodeId(1), 64);
    let addr = RemoteAddr {
        node: NodeId(1),
        region: r,
        offset: 0,
    };
    let c = cluster.clone();
    let h = sim.handle();
    let t = sim.run_to(async move {
        c.rdma_write(NodeId(0), addr, &[9u8; 8]).await;
        c.atomic_faa(NodeId(0), addr.at(8), 1).await;
        h.now()
    });
    let m = FabricModel::calibrated_2007();
    let write = m.post_overhead_ns + m.ib_bytes_time(8) + m.rdma_write_base_ns;
    let faa = m.post_overhead_ns + m.atomic_base_ns;
    assert_eq!(t, write + faa);
}
