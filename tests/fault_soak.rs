//! Fault soak: the whole service stack — cooperative caching, the lock
//! manager, and DDSS — driven under seeded randomized fault schedules
//! (node crashes, message drops, latency inflation, CPU stalls).
//!
//! The cross-cutting invariants, checked on every schedule:
//!   1. no deadlock — the scenario always drains (`run_to` panics otherwise);
//!   2. no wrong bytes — every served document matches its true content,
//!      and a strict-coherence segment is never torn;
//!   3. exclusive locks are never doubly granted, and every request drains;
//!   4. identical (workload seed, fault seed) pairs are bit-identical.
//!
//! To reproduce a failing schedule, re-run with the `(wseed, fseed,
//! drop_prob)` triple proptest prints — `soak_run` is a pure function of
//! those inputs.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;

use nextgen_datacenter::coopcache::{Backend, BackendCfg, CacheCfg, CacheScheme, CoopCache};
use nextgen_datacenter::ddss::{Coherence, Ddss, DdssConfig};
use nextgen_datacenter::dlm::{DlmConfig, LockMode, NcosedDlm};
use nextgen_datacenter::fabric::{
    Cluster, FabricModel, FaultConfig, FaultPlan, FaultStats, NodeId,
};
use nextgen_datacenter::sim::time::{ms, us};
use nextgen_datacenter::sim::Sim;
use nextgen_datacenter::workloads::FileSet;

const DOCS: usize = 48;
const DOC_SIZE: usize = 4 * 1024;
const CACHE_REQS: usize = 36;
const LOCK_CYCLES: usize = 3;

/// splitmix64 — derives per-task workload randomness from the seed without
/// dragging an RNG through every closure.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything observable about one soak run. `PartialEq`-compared across
/// reruns for the bit-identical invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SoakOutcome {
    end_ns: u64,
    served_hash: u64,
    wrong_bytes: u32,
    excl_peak: i32,
    lock_grants: u32,
    ddss_hash: u64,
    stats: FaultStats,
}

fn fault_cfg(drop_prob: f64) -> FaultConfig {
    FaultConfig {
        drop_prob,
        // Node 0 hosts the backend origin, the cache directory, the lock
        // home, and the DDSS segment: services degrade around every other
        // failure, but a dead origin has no defined outcome.
        immune_nodes: vec![NodeId(0)],
        ..FaultConfig::default()
    }
}

/// One full scenario on a 6-node cluster: node 0 is the backend/home,
/// nodes 1–2 serve documents through a cooperative cache, nodes 3–5 run
/// exclusive lock cycles and concurrently write a strict DDSS segment.
fn soak_run(wseed: u64, fseed: u64, drop_prob: f64) -> SoakOutcome {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 6);
    cluster.install_faults(FaultPlan::generate(fseed, &fault_cfg(drop_prob), 6));
    let members: Vec<NodeId> = (0..6).map(NodeId).collect();

    // --- cooperative cache over a lossy fabric ---
    let fileset = Rc::new(FileSet::uniform(DOCS, DOC_SIZE));
    let backend = Backend::spawn(
        &cluster,
        NodeId(0),
        BackendCfg::default(),
        Rc::clone(&fileset),
    );
    let cache = CoopCache::build(
        &cluster,
        CacheScheme::Bcc,
        &[NodeId(1), NodeId(2)],
        &[],
        backend,
        Rc::clone(&fileset),
        CacheCfg {
            // ~16 docs per node against 48: remote fetches are the common
            // path, so drops and peer crashes are actually exercised.
            per_node_bytes: 64 * 1024,
            ..CacheCfg::default()
        },
        NodeId(0),
    );
    let wrong: Rc<Cell<u32>> = Rc::default();
    let served_hash: Rc<Cell<u64>> = Rc::default();
    let mut joins = Vec::new();
    for (t, proxy) in [NodeId(1), NodeId(2)].into_iter().enumerate() {
        let cache = cache.clone();
        let fs = Rc::clone(&fileset);
        let wrong = Rc::clone(&wrong);
        let served_hash = Rc::clone(&served_hash);
        let h = sim.handle();
        joins.push(sim.spawn(async move {
            for i in 0..CACHE_REQS {
                let r = mix(wseed ^ mix((t as u64) << 32 | i as u64));
                let doc = (r % DOCS as u64) as u32;
                let (data, _) = cache.serve(proxy, doc).await;
                if data[..] != fs.content(doc as usize, DOC_SIZE)[..] {
                    wrong.set(wrong.get() + 1);
                }
                served_hash.set(fnv1a(served_hash.get() ^ doc as u64, &data[..8]));
                // Spread the run across the fault horizon.
                h.sleep(ms(4) + us(r >> 56)).await;
            }
        }));
    }

    // --- exclusive lock cycles: never two holders, everyone drains ---
    let dlm = NcosedDlm::new(&cluster, DlmConfig::default(), NodeId(0), 1, &members);
    let excl_cur: Rc<Cell<i32>> = Rc::default();
    let excl_peak: Rc<Cell<i32>> = Rc::default();
    let grants: Rc<Cell<u32>> = Rc::default();
    for n in 3..6u32 {
        let client = dlm.client(NodeId(n));
        let cur = Rc::clone(&excl_cur);
        let peak = Rc::clone(&excl_peak);
        let grants = Rc::clone(&grants);
        let h = sim.handle();
        joins.push(sim.spawn(async move {
            for c in 0..LOCK_CYCLES {
                let r = mix(wseed ^ mix((n as u64) << 16 | c as u64));
                h.sleep(us(r % 120_000)).await;
                client.lock(0, LockMode::Exclusive).await;
                cur.set(cur.get() + 1);
                peak.set(peak.get().max(cur.get()));
                h.sleep(us(20 + r % 200)).await;
                cur.set(cur.get() - 1);
                client.unlock(0).await;
                grants.set(grants.get() + 1);
            }
        }));
    }

    // --- strict DDSS segment: concurrent writers, never torn ---
    let ddss = Ddss::new(&cluster, DdssConfig::default(), &members);
    let owner = ddss.client(NodeId(0));
    let key = sim
        .run_to(async move { owner.allocate(NodeId(0), 64, Coherence::Strict).await })
        .expect("ddss allocate");
    for w in 3..6u32 {
        let client = ddss.client(NodeId(w));
        let h = sim.handle();
        joins.push(sim.spawn(async move {
            h.sleep(us(mix(wseed ^ w as u64) % 150_000)).await;
            client.put(&key, &[w as u8; 64]).await;
        }));
    }

    // Invariant 1: this panics "deadlock" if anything wedges.
    let h = sim.handle();
    let end_ns = sim.run_to(async move {
        for j in joins {
            j.await;
        }
        h.now()
    });

    let reader = ddss.client(NodeId(1));
    let data = sim.run_to(async move { reader.get(&key).await });
    assert_eq!(data.len(), 64);
    assert!(
        (3..6).contains(&data[0]) && data.iter().all(|&b| b == data[0]),
        "torn strict write under faults: {:?}",
        &data[..8]
    );

    SoakOutcome {
        end_ns,
        served_hash: served_hash.get(),
        wrong_bytes: wrong.get(),
        excl_peak: excl_peak.get(),
        lock_grants: grants.get(),
        ddss_hash: fnv1a(0, &data),
        stats: cluster.fault_stats(),
    }
}

fn check_invariants(o: &SoakOutcome) {
    assert_eq!(o.wrong_bytes, 0, "served corrupted bytes: {o:?}");
    assert!(o.excl_peak <= 1, "two exclusive holders at once: {o:?}");
    assert_eq!(
        o.lock_grants,
        3 * LOCK_CYCLES as u32,
        "a lock waiter was orphaned: {o:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized schedules: every invariant holds and every (workload
    /// seed, fault seed) pair reproduces bit-identically.
    #[test]
    fn soak_invariants_hold_under_random_fault_schedules(
        wseed in any::<u64>(),
        fseed in any::<u64>(),
        drop_prob in 0.0f64..0.20
    ) {
        let a = soak_run(wseed, fseed, drop_prob);
        check_invariants(&a);
        let b = soak_run(wseed, fseed, drop_prob);
        prop_assert_eq!(a, b, "identical seeds diverged");
    }
}

/// The lock-design shootout soaked under a seeded drops+latency fault
/// plan: every design still makes progress, identical (cell, fault seed)
/// pairs reproduce bit-identically, and the plan leaves a visible mark on
/// at least the message-carrying designs. Crash and stall windows are
/// excluded — one-sided atomics cannot ride out a crashed home (see
/// `dc_bench::ext_shootout::run_cell`).
#[test]
fn lock_shootout_soak_under_drops_is_survivable_and_reproducible() {
    use dc_bench::ext_shootout::{run_cell, CELLS, HORIZON_NS};
    use nextgen_datacenter::dlm::DesignKind;

    let cell = CELLS[1];
    let nodes = cell.clients + 1;
    let cfg = FaultConfig {
        horizon_ns: HORIZON_NS,
        max_crashes_per_node: 0,
        max_stalls_per_node: 0,
        drop_prob: 0.08,
        latency_min_ns: ms(2),
        latency_max_ns: ms(8),
        immune_nodes: Vec::new(),
        ..FaultConfig::default()
    };
    let mk = || FaultPlan::generate(0x50AC, &cfg, nodes);
    assert!(
        !mk().latency_windows().is_empty(),
        "plan has no latency window"
    );
    for design in DesignKind::ALL {
        let a = run_cell(design, cell, Some(mk()));
        let b = run_cell(design, cell, Some(mk()));
        assert!(a.acquires > 0, "{design:?} made no progress under faults");
        assert_eq!(a.acquires, b.acquires, "{design:?} diverged");
        assert_eq!(
            a.p99_wait_us.to_bits(),
            b.p99_wait_us.to_bits(),
            "{design:?} diverged"
        );
        assert_eq!(
            a.fairness_cv.to_bits(),
            b.fairness_cv.to_bits(),
            "{design:?} diverged"
        );
        assert_eq!(
            a.max_wait_us.to_bits(),
            b.max_wait_us.to_bits(),
            "{design:?} diverged"
        );
    }

    // The plan is not a no-op: a message-carrying design feels it.
    let clean = run_cell(DesignKind::McsTicket, cell, None);
    let faulted = run_cell(DesignKind::McsTicket, cell, Some(mk()));
    assert_ne!(
        clean.acquires, faulted.acquires,
        "the fault plan had no observable effect on MCS-FAA"
    );
}

/// A pinned schedule that demonstrably injects all three headline fault
/// classes — node crashes, message drops, latency inflation (plus CPU
/// stalls) — survives with every invariant intact, and reproduces
/// bit-identically.
#[test]
fn soak_with_all_fault_classes_is_survivable_and_reproducible() {
    let (wseed, fseed, drop) = (11, 23, 0.10);
    let plan = FaultPlan::generate(fseed, &fault_cfg(drop), 6);
    assert!(!plan.crash_windows().is_empty(), "schedule has no crash");
    assert!(
        !plan.latency_windows().is_empty(),
        "schedule has no latency window"
    );
    assert!(
        !plan.stall_windows().is_empty(),
        "schedule has no stall window"
    );

    let a = soak_run(wseed, fseed, drop);
    check_invariants(&a);
    assert!(
        a.stats.dropped_msgs > 0,
        "no message was ever dropped: {a:?}"
    );
    assert!(
        a.stats.retries > 0,
        "nothing retried — faults were invisible: {a:?}"
    );

    let b = soak_run(wseed, fseed, drop);
    assert_eq!(a, b, "same fault seed must be bit-identical");

    // A different fault seed genuinely changes the execution.
    let c = soak_run(wseed, fseed + 1, drop);
    assert_ne!(a.end_ns, c.end_ns, "fault seed had no effect");
}

/// At-scale open-loop webfarm soak: a scaled-down `ext_webfarm_scale`
/// configuration driven past saturation under the full default fault menu
/// (crashes, drops, latency storms, stalls). The farm must keep serving,
/// conserve every issued request, reproduce bit-identically per seed, and
/// the plan must not be a no-op.
#[test]
fn webfarm_scale_soak_under_faults_conserves_and_reproduces() {
    use nextgen_datacenter::core::{run_webfarm_scale, ScaleFarmCfg};

    let base = ScaleFarmCfg {
        proxies: 16,
        app_nodes: 8,
        clients: 3_000,
        backend_workers: 1,
        horizon_ns: 900_000_000,
        warmup_ns: 200_000_000,
        ..dc_bench::ext_webfarm::gate_cfg()
    };
    let sat = base.saturation_rps();
    let cfg = ScaleFarmCfg {
        offered_rps: 1.3 * sat,
        faults: Some((0x50A_D01, FaultConfig::default())),
        ..base.clone()
    };

    let a = run_webfarm_scale(&cfg);
    let b = run_webfarm_scale(&cfg);
    assert_eq!(a, b, "faulted at-scale run diverged across replays");
    assert_eq!(a.conservation_gap, 0, "conservation violated: {a:?}");
    assert!(a.completed > 0, "farm made no progress under faults");
    assert!(
        a.shed_queue > 0,
        "an overloaded farm must shed at admission: {a:?}"
    );

    // The plan is not a no-op: the clean run differs.
    let clean = run_webfarm_scale(&ScaleFarmCfg {
        faults: None,
        ..cfg.clone()
    });
    assert_ne!(
        clean.completed, a.completed,
        "the fault plan had no observable effect"
    );
    assert_eq!(clean.conservation_gap, 0);
}
