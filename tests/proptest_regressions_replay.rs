//! Replays committed `*.proptest-regressions` seeds.
//!
//! The vendored offline `proptest` is a strategy/runner stub: it neither
//! writes nor reads `.proptest-regressions` files, so seeds committed by
//! upstream proptest would be silently ignored — a regression file could
//! rot into a lie. This suite closes that gap in two parts:
//!
//! 1. every committed regression file under `tests/` must have a replay
//!    registered here (adding a file without a replay fails the build);
//! 2. each registered replay re-runs the shrunk case against the same
//!    property body as the originating proptest, with the concrete values
//!    recorded in the file.
//!
//! When a future proptest failure is worth pinning, append its shrunk
//! values to the matching `.proptest-regressions` file (the upstream `cc`
//! line format, values in the trailing comment) and add a replay function
//! below.

use nextgen_datacenter::workloads::Zipf;

/// Replays registered by regression-file stem. Extend this table when a
/// new `tests/<stem>.proptest-regressions` file is committed.
const REPLAYS: &[(&str, fn())] = &[("prop_primitives", replay_prop_primitives)];

/// `prop_primitives.proptest-regressions`:
/// `cc aad4d31e… # shrinks to n = 4, alpha = 0.1, seed = 11472798134791117982`
///
/// The shrunk edge of `zipf_is_well_formed`: a tiny table at the flattest
/// supported skew, where the head-share bound has the least slack. The
/// body mirrors the proptest property exactly.
fn replay_prop_primitives() {
    let (n, alpha, seed) = (4usize, 0.1f64, 11472798134791117982u64);
    let z = Zipf::new(n, alpha);
    let mut rng = nextgen_datacenter::sim::rng::seeded_rng(seed);
    let mut head = 0usize;
    let mut total = 0usize;
    for _ in 0..500 {
        let r = z.sample(&mut rng);
        assert!(r < n);
        total += 1;
        if r < n.div_ceil(2) {
            head += 1;
        }
    }
    assert!(head as f64 >= 0.44 * total as f64, "head {head} of {total}");
    let sum: f64 = (0..n).map(|i| z.pmf(i)).sum();
    assert!((sum - 1.0).abs() < 1e-9);
}

/// Every committed regression file has a registered replay, and every
/// registered replay still has its file (no dangling entries either way).
#[test]
fn every_regression_file_has_a_registered_replay() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("tests/ readable")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name();
            let name = name.to_string_lossy().into_owned();
            name.strip_suffix(".proptest-regressions")
                .map(str::to_owned)
        })
        .collect();
    stems.sort_unstable();
    assert!(
        !stems.is_empty(),
        "no .proptest-regressions files found — if they were deliberately \
         removed, retire this suite with them"
    );
    for stem in &stems {
        assert!(
            REPLAYS.iter().any(|(s, _)| s == stem),
            "tests/{stem}.proptest-regressions has no registered replay: \
             the vendored proptest ignores the file, so without one its \
             seeds are dead weight. Add a replay to REPLAYS."
        );
    }
    for (stem, _) in REPLAYS {
        assert!(
            stems.iter().any(|s| s == stem),
            "replay '{stem}' has no tests/{stem}.proptest-regressions file"
        );
    }
}

/// Each regression file's `cc` lines are well-formed (non-empty, carry the
/// shrunk-values comment the replays transcribe), so a hand-edit that
/// breaks the format is caught.
#[test]
fn regression_files_are_well_formed() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    for (stem, _) in REPLAYS {
        let path = dir.join(format!("{stem}.proptest-regressions"));
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let cases: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert!(!cases.is_empty(), "{stem}: no regression cases recorded");
        for case in cases {
            assert!(
                case.starts_with("cc ") && case.contains("# shrinks to"),
                "{stem}: malformed regression line: {case:?}"
            );
        }
    }
}

/// Run every registered replay.
#[test]
fn committed_regression_seeds_still_pass() {
    for (stem, replay) in REPLAYS {
        eprintln!("replaying {stem}.proptest-regressions");
        replay();
    }
}
