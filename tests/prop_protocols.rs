//! Property-based tests of the distributed protocols: lock-manager safety
//! and liveness under randomized schedules, DDSS coherence invariants
//! under concurrent access, monitoring-accuracy dominance, and
//! reconfiguration stability.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;

use nextgen_datacenter::ddss::{Coherence, Ddss, DdssConfig};
use nextgen_datacenter::dlm::{DesignKind, DlmConfig, LockMode, NcosedDlm};
use nextgen_datacenter::fabric::{Cluster, FabricModel, FaultConfig, FaultPlan, NodeId};
use nextgen_datacenter::sim::time::{ms, us};
use nextgen_datacenter::sim::Sim;

/// One randomized lock request.
#[derive(Debug, Clone, Copy)]
struct LockOp {
    node: u32,
    exclusive: bool,
    arrive_us: u64,
    hold_us: u64,
}

fn lock_op(nodes: u32) -> impl Strategy<Value = LockOp> {
    (1..nodes, any::<bool>(), 0u64..3_000, 10u64..500).prop_map(
        |(node, exclusive, arrive_us, hold_us)| LockOp {
            node,
            exclusive,
            arrive_us,
            hold_us,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// N-CoSED safety and liveness: writers exclude everyone, readers
    /// overlap only with readers, and every request is eventually granted —
    /// under arbitrary arrival schedules, modes, and hold times.
    ///
    /// One request per node at a time (the manager's documented contract),
    /// so each op gets its own node out of a 9-node pool.
    #[test]
    fn ncosed_is_safe_and_live(ops in prop::collection::vec(lock_op(9), 1..9)) {
        // De-duplicate node ids: the manager allows one outstanding request
        // per (node, lock).
        let mut seen = std::collections::HashSet::new();
        let ops: Vec<LockOp> = ops
            .into_iter()
            .filter(|op| seen.insert(op.node))
            .collect();
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 10);
        let members: Vec<NodeId> = (0..10).map(NodeId).collect();
        let dlm = NcosedDlm::new(&cluster, DlmConfig::default(), NodeId(0), 1, &members);

        let readers: Rc<Cell<i64>> = Rc::default();
        let writers: Rc<Cell<i64>> = Rc::default();
        let violations: Rc<Cell<u32>> = Rc::default();
        let granted: Rc<Cell<usize>> = Rc::default();
        for op in &ops {
            let client = dlm.client(NodeId(op.node));
            let readers = Rc::clone(&readers);
            let writers = Rc::clone(&writers);
            let violations = Rc::clone(&violations);
            let granted = Rc::clone(&granted);
            let h = sim.handle();
            let op = *op;
            sim.spawn(async move {
                h.sleep(us(op.arrive_us)).await;
                let mode = if op.exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                };
                client.lock(0, mode).await;
                if op.exclusive {
                    if readers.get() > 0 || writers.get() > 0 {
                        violations.set(violations.get() + 1);
                    }
                    writers.set(writers.get() + 1);
                } else {
                    if writers.get() > 0 {
                        violations.set(violations.get() + 1);
                    }
                    readers.set(readers.get() + 1);
                }
                h.sleep(us(op.hold_us)).await;
                if op.exclusive {
                    writers.set(writers.get() - 1);
                } else {
                    readers.set(readers.get() - 1);
                }
                client.unlock(0).await;
                granted.set(granted.get() + 1);
            });
        }
        let reached = sim.run_until(ms(500));
        prop_assert_eq!(reached, ms(500));
        prop_assert_eq!(violations.get(), 0, "mutual exclusion violated");
        prop_assert_eq!(granted.get(), ops.len(), "a request was never granted");
        prop_assert_eq!(readers.get(), 0);
        prop_assert_eq!(writers.get(), 0);
    }

    /// DDSS strict coherence: with N concurrent writers of distinct
    /// patterns, the final segment is exactly one writer's full pattern —
    /// never torn — and the stamp word reflects some successful write.
    #[test]
    fn strict_coherence_never_tears(
        writer_count in 2usize..6,
        len in 1usize..200,
        stagger in prop::collection::vec(0u64..2_000, 6)
    ) {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 7);
        let members: Vec<NodeId> = (0..7).map(NodeId).collect();
        let ddss = Ddss::new(&cluster, DdssConfig::default(), &members);
        let owner = ddss.client(NodeId(0));
        let key = sim.run_to(async move {
            owner.allocate(NodeId(0), len, Coherence::Strict).await.unwrap()
        });
        for (w, &delay) in stagger.iter().enumerate().take(writer_count) {
            let client = ddss.client(NodeId(1 + w as u32));
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(us(delay)).await;
                let pattern = vec![(w as u8) + 1; len];
                client.put(&key, &pattern).await;
            });
        }
        sim.run();
        let reader = ddss.client(NodeId(6));
        let data = sim.run_to(async move { reader.get(&key).await });
        prop_assert_eq!(data.len(), len);
        let first = data[0];
        prop_assert!(first >= 1 && first <= writer_count as u8);
        prop_assert!(data.iter().all(|&b| b == first), "torn strict write");
    }

    /// Versioned puts: version increases by exactly one per successful
    /// versioned write, and conflicting writers always learn the truth.
    #[test]
    fn versioned_puts_serialize(writers in 2usize..5, rounds in 1usize..4) {
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 6);
        let members: Vec<NodeId> = (0..6).map(NodeId).collect();
        let ddss = Ddss::new(&cluster, DdssConfig::default(), &members);
        let owner = ddss.client(NodeId(0));
        let key = sim.run_to(async move {
            owner.allocate(NodeId(0), 8, Coherence::Version).await.unwrap()
        });
        let successes: Rc<Cell<u64>> = Rc::default();
        for w in 0..writers {
            let client = ddss.client(NodeId(1 + w as u32));
            let successes = Rc::clone(&successes);
            sim.spawn(async move {
                for _ in 0..rounds {
                    // Optimistic loop: read the version, attempt the CAS-put.
                    loop {
                        let v = client.version(&key).await;
                        match client.put_versioned(&key, &v.to_le_bytes(), v).await {
                            Ok(_) => {
                                successes.set(successes.get() + 1);
                                break;
                            }
                            Err(_actual) => continue,
                        }
                    }
                }
            });
        }
        sim.run();
        let reader = ddss.client(NodeId(5));
        let final_version = sim.run_to(async move { reader.version(&key).await });
        prop_assert_eq!(final_version, successes.get());
        prop_assert_eq!(successes.get(), (writers * rounds) as u64);
    }
}

proptest! {
    // Every case drives one whole cluster per lock design, so few cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The `LockClient` trait contract, checked for every design at once:
    /// exclusive holders never overlap, and every request drains — under
    /// randomized arrivals and hold times, optionally with seeded message
    /// drops and latency storms. Hold times stay far below the lease
    /// bound, so the lease design's conditional mutual exclusion is
    /// unconditional here (DESIGN.md). Crash and stall windows are
    /// excluded by construction: one-sided atomics cannot ride out a
    /// crashed home.
    #[test]
    fn every_lock_design_is_safe_and_drains(
        ops in prop::collection::vec(lock_op(7), 2..7),
        faulted in any::<bool>(),
        fault_seed in any::<u64>(),
    ) {
        // One outstanding request per (node, lock) — the trait contract.
        let mut seen = std::collections::HashSet::new();
        let ops: Vec<LockOp> = ops
            .into_iter()
            .filter(|op| seen.insert(op.node))
            .collect();
        for design in DesignKind::ALL {
            let sim = Sim::new();
            let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 7);
            if faulted {
                let cfg = FaultConfig {
                    horizon_ns: ms(60),
                    max_crashes_per_node: 0,
                    max_stalls_per_node: 0,
                    drop_prob: 0.05,
                    latency_windows: 2,
                    latency_min_ns: ms(2),
                    latency_max_ns: ms(8),
                    ..Default::default()
                };
                cluster.install_faults(FaultPlan::generate(fault_seed, &cfg, 7));
            }
            let members: Vec<NodeId> = (0..7).map(NodeId).collect();
            let mut clients: Vec<_> = design
                .build(&cluster, DlmConfig::default(), NodeId(0), 4, &members)
                .into_iter()
                .map(Some)
                .collect();
            let in_cs: Rc<Cell<i64>> = Rc::default();
            let violations: Rc<Cell<u32>> = Rc::default();
            let granted: Rc<Cell<usize>> = Rc::default();
            for op in &ops {
                let client = clients[op.node as usize].take().expect("one op per node");
                let in_cs = Rc::clone(&in_cs);
                let violations = Rc::clone(&violations);
                let granted = Rc::clone(&granted);
                let h = sim.handle();
                let op = *op;
                sim.spawn(async move {
                    h.sleep(us(op.arrive_us)).await;
                    // Exclusive only: CAS-Spin, Lease, and MCS-FAA treat
                    // every request as exclusive, so a shared overlap
                    // would read as a false violation.
                    client.lock(0, LockMode::Exclusive).await;
                    if in_cs.get() > 0 {
                        violations.set(violations.get() + 1);
                    }
                    in_cs.set(in_cs.get() + 1);
                    h.sleep(us(op.hold_us)).await;
                    in_cs.set(in_cs.get() - 1);
                    client.unlock(0).await;
                    granted.set(granted.get() + 1);
                });
            }
            let reached = sim.run_until(ms(400));
            prop_assert_eq!(reached, ms(400), "{:?} stalled the sim", design);
            prop_assert_eq!(
                violations.get(), 0,
                "{:?}: mutual exclusion violated (faulted={})", design, faulted
            );
            prop_assert_eq!(
                granted.get(), ops.len(),
                "{:?}: a request was never granted (faulted={})", design, faulted
            );
            prop_assert_eq!(in_cs.get(), 0, "{:?}", design);
        }
    }

    /// Fig 8a generalized: synchronous RDMA sampling dominates both
    /// asynchronous schemes on monitoring accuracy, not just at the
    /// figure's sampling cadence but across sampling periods and horizon
    /// lengths. (Sync RDMA reads the truth at the instant it is consumed;
    /// async schemes serve a stale snapshot no matter the transport.)
    #[test]
    fn rdma_sync_accuracy_dominates_async_schemes(
        sample_period_ms in 5u64..25,
        duration_ms in 150u64..400,
    ) {
        use nextgen_datacenter::resmon::MonitorScheme;
        let duration = ms(duration_ms);
        let period = ms(sample_period_ms);
        let run = |scheme| dc_bench::fig8a::run_scheme(scheme, duration, period);
        let sync = run(MonitorScheme::RdmaSync);
        let rdma_async = run(MonitorScheme::RdmaAsync);
        let socket_async = run(MonitorScheme::SocketAsync);
        prop_assert!(!sync.samples.is_empty());
        prop_assert!(
            sync.mean_deviation() <= rdma_async.mean_deviation(),
            "RDMA-Sync {:.3} should not trail RDMA-Async {:.3} (period {sample_period_ms}ms)",
            sync.mean_deviation(),
            rdma_async.mean_deviation()
        );
        prop_assert!(
            sync.mean_deviation() <= socket_async.mean_deviation(),
            "RDMA-Sync {:.3} should not trail Socket-Async {:.3} (period {sample_period_ms}ms)",
            sync.mean_deviation(),
            socket_async.mean_deviation()
        );
        prop_assert!(
            sync.max_deviation() <= socket_async.max_deviation(),
            "worst-case deviation must not regress either"
        );
    }

    /// Reconfiguration stability: under *stable, balanced* load the
    /// adaptation agent must never move a node — for either the fine
    /// (2 ms RDMA) or coarse (500 ms socket) profile, at any uniform load
    /// level. Oscillation under steady state would thrash caches and
    /// processes; the imbalance-ratio and hysteresis guards exist exactly
    /// to forbid it.
    #[test]
    fn reconfiguration_never_oscillates_under_stable_load(
        fine in any::<bool>(),
        threads_per_node in 0u32..4,
    ) {
        use nextgen_datacenter::reconfig::{AdaptCfg, Reconfigurator, SiteMap};
        use nextgen_datacenter::resmon::{Monitor, MonitorCfg, MonitorScheme};

        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 5);
        let backends = [NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        let map = SiteMap::new(
            &cluster,
            NodeId(0),
            &[(NodeId(1), 0), (NodeId(2), 0), (NodeId(3), 1), (NodeId(4), 1)],
        );
        let (scheme, cfg) = if fine {
            (MonitorScheme::RdmaSync, AdaptCfg::fine(2))
        } else {
            (MonitorScheme::SocketSync, AdaptCfg::coarse(2))
        };
        let monitor =
            Monitor::spawn(&cluster, scheme, MonitorCfg::default(), NodeId(0), &backends);
        let agent = Reconfigurator::spawn(sim.handle(), NodeId(0), map, monitor, 2, cfg);

        // Identical steady load on every backend of both sites.
        for node in backends {
            let cpu = cluster.cpu(node);
            let h = sim.handle();
            sim.spawn(async move {
                for _ in 0..threads_per_node {
                    let c = cpu.clone();
                    h.spawn(async move { c.execute(ms(1_500)).await });
                }
            });
        }
        sim.run_until(ms(1_000));
        prop_assert!(agent.checks() > 0, "the agent must actually be evaluating load");
        prop_assert_eq!(
            agent.moves().len(),
            0,
            "stable balanced load must never trigger a move (fine={}, threads={})",
            fine,
            threads_per_node
        );
    }
}
