//! The at-scale webfarm's steady-state loop is allocation-free.
//!
//! A counting global allocator (this file is its own test binary, so the
//! counter sees only this test) measures two runs of the same scaled
//! configuration that differ only in horizon. Setup allocates — arrival
//! slabs, queues, histograms — and the first measured window may still
//! grow a `VecDeque` or a waiter list to its high-water mark, but the
//! *extra* second of simulated steady state must add (almost) nothing:
//! every per-request structure is recycled slab state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Allocations at least one response payload long — the signature a copied
/// eRPC response body would leave behind.
static PAYLOAD_SIZED: AtomicU64 = AtomicU64::new(0);
const PAYLOAD_BYTES: usize = 8192;

struct Counting;
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        if l.size() >= PAYLOAD_BYTES {
            PAYLOAD_SIZED.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}
#[global_allocator]
static A: Counting = Counting;

#[test]
fn webfarm_scale_steady_state_is_allocation_free() {
    use dc_core::{run_webfarm_scale, ScaleFarmCfg};

    let base = ScaleFarmCfg {
        proxies: 16,
        app_nodes: 8,
        clients: 3_000,
        backend_workers: 1,
        warmup_ns: 200_000_000,
        ..dc_bench::ext_webfarm::gate_cfg()
    };
    let sat = base.saturation_rps();
    let run_for = |horizon_ns: u64| {
        let cfg = ScaleFarmCfg {
            offered_rps: 0.8 * sat,
            horizon_ns,
            ..base.clone()
        };
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let p = run_webfarm_scale(&cfg);
        let da = ALLOCS.load(Ordering::Relaxed) - a0;
        (da, p)
    };

    // Warm process-wide state (Zipf table cache, allocator arenas).
    let (_, warm) = run_for(800_000_000);
    assert!(warm.completed > 0);

    let (allocs_short, short) = run_for(1_000_000_000);
    let (allocs_long, long) = run_for(2_000_000_000);
    assert!(
        long.completed > short.completed,
        "the longer run must serve more requests"
    );
    // The extra simulated second adds requests but must not add
    // allocations beyond stabilisation noise (well under 1% of a run's
    // setup allocations).
    let delta = allocs_long.saturating_sub(allocs_short);
    eprintln!(
        "alloc_steady: 1s horizon {allocs_short} allocs, 2s horizon {allocs_long}, delta {delta}"
    );
    assert!(
        delta < allocs_short / 100,
        "steady state allocated: {allocs_short} allocs for 1s horizon, \
         {allocs_long} for 2s (delta {delta})"
    );
}

/// The eRPC incast loop moves every response as a refcounted `Bytes` clone
/// of the server's one buffer. Two runs differing only in request count
/// isolate the steady state: the extra requests must add not a single
/// payload-sized allocation — a copying lane would add one 8 KiB buffer
/// per extra response.
#[test]
fn erpc_incast_steady_state_makes_zero_payload_copies() {
    use bytes::Bytes;
    use dc_fabric::{Cluster, FabricModel, NodeId};
    use dc_sim::Sim;
    use dc_sockets::erpc::{ErpcCfg, ErpcMux, ErpcServer};
    use std::rc::Rc;

    let sessions = 16usize;
    let run_for = |reqs_per_session: usize| {
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let p0 = PAYLOAD_SIZED.load(Ordering::Relaxed);
        let sim = Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
        let resp = Bytes::from(vec![0xA5u8; PAYLOAD_BYTES]);
        let resp_clone = resp.clone();
        let srv = ErpcServer::spawn(
            &cluster,
            NodeId(1),
            2,
            4,
            1_000,
            Rc::new(move |_, _| resp_clone.clone()),
        );
        let mux = ErpcMux::new(&cluster, NodeId(0), ErpcCfg::default());
        let sess: Vec<_> = (0..sessions)
            .map(|i| mux.session(NodeId(1), srv.ports()[i % srv.ports().len()], i as u64))
            .collect();
        let req = Bytes::from_static(&[7u8; 32]);
        let served = sim.run_to(async move {
            let mut served = 0u64;
            for _ in 0..reqs_per_session {
                for s in &sess {
                    let r = s.call(0, req.clone()).await;
                    assert_eq!(r.as_ptr(), resp.as_ptr(), "response was copied");
                    served += 1;
                }
            }
            served
        });
        assert_eq!(served, (sessions * reqs_per_session) as u64);
        (
            ALLOCS.load(Ordering::Relaxed) - a0,
            PAYLOAD_SIZED.load(Ordering::Relaxed) - p0,
        )
    };

    // Warm process-wide state, then measure two request volumes.
    let _ = run_for(4);
    let (allocs_short, payload_short) = run_for(32);
    let (allocs_long, payload_long) = run_for(64);
    let extra_reqs = (sessions * 32) as u64;
    let payload_delta = payload_long.saturating_sub(payload_short);
    let alloc_delta = allocs_long.saturating_sub(allocs_short);
    eprintln!(
        "alloc_steady incast: {extra_reqs} extra requests, {alloc_delta} extra allocs, \
         {payload_delta} extra payload-sized"
    );
    assert_eq!(
        payload_delta, 0,
        "{payload_delta} payload-sized allocations for {extra_reqs} extra \
         zero-copy requests"
    );
    // The whole extra batch must also stay far below one allocation per
    // request — recycled slots, not per-request buffers.
    assert!(
        alloc_delta < extra_reqs / 8,
        "steady incast allocated {alloc_delta} times for {extra_reqs} extra requests"
    );
}
