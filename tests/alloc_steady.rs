//! The at-scale webfarm's steady-state loop is allocation-free.
//!
//! A counting global allocator (this file is its own test binary, so the
//! counter sees only this test) measures two runs of the same scaled
//! configuration that differ only in horizon. Setup allocates — arrival
//! slabs, queues, histograms — and the first measured window may still
//! grow a `VecDeque` or a waiter list to its high-water mark, but the
//! *extra* second of simulated steady state must add (almost) nothing:
//! every per-request structure is recycled slab state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct Counting;
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(l) }
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }
}
#[global_allocator]
static A: Counting = Counting;

#[test]
fn webfarm_scale_steady_state_is_allocation_free() {
    use dc_core::{run_webfarm_scale, ScaleFarmCfg};

    let base = ScaleFarmCfg {
        proxies: 16,
        app_nodes: 8,
        clients: 3_000,
        backend_workers: 1,
        warmup_ns: 200_000_000,
        ..dc_bench::ext_webfarm::gate_cfg()
    };
    let sat = base.saturation_rps();
    let run_for = |horizon_ns: u64| {
        let cfg = ScaleFarmCfg {
            offered_rps: 0.8 * sat,
            horizon_ns,
            ..base.clone()
        };
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let p = run_webfarm_scale(&cfg);
        let da = ALLOCS.load(Ordering::Relaxed) - a0;
        (da, p)
    };

    // Warm process-wide state (Zipf table cache, allocator arenas).
    let (_, warm) = run_for(800_000_000);
    assert!(warm.completed > 0);

    let (allocs_short, short) = run_for(1_000_000_000);
    let (allocs_long, long) = run_for(2_000_000_000);
    assert!(
        long.completed > short.completed,
        "the longer run must serve more requests"
    );
    // The extra simulated second adds requests but must not add
    // allocations beyond stabilisation noise (well under 1% of a run's
    // setup allocations).
    let delta = allocs_long.saturating_sub(allocs_short);
    eprintln!(
        "alloc_steady: 1s horizon {allocs_short} allocs, 2s horizon {allocs_long}, delta {delta}"
    );
    assert!(
        delta < allocs_short / 100,
        "steady state allocated: {allocs_short} allocs for 1s horizon, \
         {allocs_long} for 2s (delta {delta})"
    );
}
