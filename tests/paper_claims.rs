//! The paper-claims conformance suite.
//!
//! Every `fig*`/`ext*` scenario runs in-process (same code path as the
//! `--json` bins) and is checked against the claim tables transcribed
//! from `EXPERIMENTS.md` in `dc_regress::claims`. This is tier-1: a
//! change that breaks a figure's *shape* — an ordering flip, a lost
//! crossover, a vanished 80x factor — fails `cargo test` directly,
//! before the numeric baseline gate even looks at it.
//!
//! Also here: the negative control (a deliberately perturbed fabric
//! calibration must violate claims — proving the claims actually
//! constrain the model), the live-vs-committed-baseline diff, and
//! fault-seeded robustness claims (opt-in via `DC_CLAIMS_FAULTS=1`,
//! exercised by CI).

use dc_bench::scenario;
use dc_regress::{claims_for, diff, evaluate, LoadedReport, Tolerance};

/// Run one scenario and assert its transcribed claims hold.
fn assert_claims_hold(name: &str) {
    let s = scenario::by_name(name).expect("scenario registered");
    let claims = claims_for(name);
    assert!(!claims.is_empty(), "no claims transcribed for {name}");
    let report = (s.run)();
    let violations = evaluate(report.tables(), &claims);
    assert!(
        violations.is_empty(),
        "{name}: {} paper claim(s) violated:\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fig3a_ddss_put_claims() {
    assert_claims_hold("fig3a_ddss_put");
}

#[test]
fn fig3b_storm_claims() {
    assert_claims_hold("fig3b_storm");
}

#[test]
fn fig5a_lock_shared_claims() {
    assert_claims_hold("fig5a_lock_shared");
}

#[test]
fn fig5b_lock_exclusive_claims() {
    assert_claims_hold("fig5b_lock_exclusive");
}

#[test]
fn fig6_coopcache_claims() {
    assert_claims_hold("fig6_coopcache");
}

#[test]
fn fig8a_monitor_accuracy_claims() {
    assert_claims_hold("fig8a_monitor_accuracy");
}

#[test]
fn fig8b_monitor_throughput_claims() {
    assert_claims_hold("fig8b_monitor_throughput");
}

#[test]
fn ext_flowcontrol_bw_claims() {
    assert_claims_hold("ext_flowcontrol_bw");
}

#[test]
fn ext_fine_reconfig_claims() {
    assert_claims_hold("ext_fine_reconfig");
}

#[test]
fn ext_ablations_claims() {
    assert_claims_hold("ext_ablations");
}

#[test]
fn ext_lock_shootout_claims() {
    assert_claims_hold("ext_lock_shootout");
}

#[test]
fn ext_webfarm_scale_claims() {
    assert_claims_hold("ext_webfarm_scale");
}

#[test]
fn ext_incast_claims() {
    assert_claims_hold("ext_incast");
}

#[test]
fn every_registered_scenario_has_claims() {
    for s in &scenario::ALL {
        assert!(
            !claims_for(s.name).is_empty(),
            "{} has no transcribed paper claims",
            s.name
        );
    }
}

/// Negative control: the claims must *constrain* the calibration. A
/// fabric model with a wrecked RDMA-write cost has to violate at least
/// one Fig 3a claim and carry a different fingerprint — if this test
/// ever passes with zero violations, the claim tables have gone soft.
#[test]
fn perturbed_calibration_fails_fig3a_claims() {
    let good = dc_fabric::FabricModel::calibrated_2007();
    let mut bad = good.clone();
    // An RDMA write costing more than a Strict-coherence lock cycle
    // inverts the Fig 3a ordering and blows the 1-byte Null band.
    bad.rdma_write_base_ns *= 8;

    assert_ne!(
        good.fingerprint(),
        bad.fingerprint(),
        "perturbation must be visible in the calibration fingerprint"
    );

    let report = scenario::fig3a_report_with(&bad);
    assert_eq!(report.fingerprint(), Some(bad.fingerprint().as_str()));
    let violations = evaluate(report.tables(), &claims_for("fig3a_ddss_put"));
    assert!(
        !violations.is_empty(),
        "a 8x RDMA-write cost must break at least one Fig 3a claim"
    );
}

/// The perturbed report also refuses to diff against a healthy baseline:
/// calibration drift surfaces as a hard fingerprint error, not as a wall
/// of numeric deltas.
#[test]
fn perturbed_calibration_is_rejected_by_the_differ() {
    let mut bad = dc_fabric::FabricModel::calibrated_2007();
    bad.rdma_write_base_ns += 1;
    let healthy = LoadedReport::from_bench(&scenario::fig3a_report());
    let drifted = LoadedReport::from_bench(&scenario::fig3a_report_with(&bad));
    let err = diff(&healthy, &drifted, &Tolerance::pct(100.0)).unwrap_err();
    assert!(matches!(
        err,
        dc_regress::DiffError::FingerprintMismatch(_, _)
    ));
}

/// A live run diffs cleanly against itself at zero tolerance — the
/// regression gate's self-consistency floor (determinism guarantee).
#[test]
fn live_report_self_comparison_is_clean() {
    let a = LoadedReport::from_bench(&scenario::fig5a_report());
    let b = LoadedReport::from_bench(&scenario::fig5a_report());
    let d = diff(&a, &b, &Tolerance::pct(0.0)).unwrap();
    assert_eq!(
        d.regressions(),
        0,
        "same seed, same model, same numbers:\n{}",
        d.render(false)
    );
    assert!(!d.cells.is_empty());
}

/// Live runs must match the committed `baselines/` exactly: the same
/// check CI's regression gate performs, kept in tier-1 so a drift is
/// caught at `cargo test` time with a cell-level explanation.
#[test]
fn live_runs_match_committed_baselines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines");
    assert!(
        dir.is_dir(),
        "committed baselines missing at {}",
        dir.display()
    );
    for s in &scenario::ALL {
        let base =
            LoadedReport::from_path(&dir.join(format!("{}.json", s.name))).expect("baseline loads");
        let live = LoadedReport::from_bench(&(s.run)());
        let d =
            diff(&base, &live, &Tolerance::pct(0.0)).unwrap_or_else(|e| panic!("{}: {e}", s.name));
        assert_eq!(
            d.regressions(),
            0,
            "{} drifted from its committed baseline (re-bless deliberately):\n{}",
            s.name,
            d.render(false)
        );
    }
}

/// Fault-seeded robustness claims, opt-in via `DC_CLAIMS_FAULTS=1` (CI
/// runs the suite a second time with it set). Under injected crashes,
/// drops, and latency storms the exact figures move, but the paper's
/// *relative* story must survive: cooperation still beats no
/// cooperation, and accurate RDMA monitoring still beats blind socket
/// polling.
#[test]
fn fault_seeded_claims_hold_when_enabled() {
    if std::env::var("DC_CLAIMS_FAULTS").ok().as_deref() != Some("1") {
        return; // opt-in: default tier-1 stays fault-free
    }
    let faults = dc_fabric::FaultConfig::default();
    for seed in [7u64, 8, 9] {
        // Cooperative caching under faults: BCC still beats AC.
        let mk = |scheme| {
            let mut cfg = dc_bench::fig6::cell_cfg(2, scheme, 16 * 1024);
            cfg.faults = Some((seed, faults.clone()));
            dc_core::run_webfarm(&cfg)
        };
        let ac = mk(dc_coopcache::CacheScheme::Ac);
        let bcc = mk(dc_coopcache::CacheScheme::Bcc);
        assert!(
            bcc.tps > ac.tps,
            "seed {seed}: faulted BCC {:.0} should still beat AC {:.0}",
            bcc.tps,
            ac.tps
        );

        // Hosted throughput under faults: RDMA-Sync still beats Socket-Sync.
        let mk = |scheme| {
            let mut cfg = dc_bench::fig8b::cell_cfg(scheme, 0.75);
            cfg.faults = Some((seed, faults.clone()));
            dc_core::run_hosting(&cfg)
        };
        let socket = mk(dc_resmon::MonitorScheme::SocketSync);
        let rdma = mk(dc_resmon::MonitorScheme::RdmaSync);
        assert!(
            rdma.tps > socket.tps,
            "seed {seed}: faulted RDMA-Sync {:.0} should still beat Socket-Sync {:.0}",
            rdma.tps,
            socket.tps
        );
    }
}

/// Fault-seeded at-scale webfarm invariants, opt-in via
/// `DC_CLAIMS_FAULTS=1`. Crashes, drops, and latency storms move every
/// quantile, but the structural story must survive: every issued request
/// is still accounted for (conservation), runs stay bit-deterministic per
/// seed, goodput can never exceed what was admitted, and an overloaded
/// farm still sheds rather than queueing without bound.
#[test]
fn fault_seeded_webfarm_scale_conservation_holds() {
    if std::env::var("DC_CLAIMS_FAULTS").ok().as_deref() != Some("1") {
        return; // opt-in: default tier-1 stays fault-free
    }
    let base = dc_bench::ext_webfarm::gate_cfg();
    let sat = base.saturation_rps();
    for seed in [7u64, 8, 9] {
        let cfg = dc_core::ScaleFarmCfg {
            // A quarter-size population at 1.2x saturation keeps the
            // three-seed loop fast while still straddling the knee.
            clients: base.clients / 4,
            offered_rps: 1.2 * sat,
            faults: Some((seed, dc_fabric::FaultConfig::default())),
            ..base.clone()
        };
        let p = dc_core::run_webfarm_scale(&cfg);
        assert_eq!(
            p.conservation_gap, 0,
            "seed {seed}: conservation violated under faults: {p:?}"
        );
        assert!(
            p.shed > 0,
            "seed {seed}: an overloaded faulted farm must shed"
        );
        assert!(
            p.goodput_rps <= p.offered_rps,
            "seed {seed}: goodput {} above offered {}",
            p.goodput_rps,
            p.offered_rps
        );
        let q = dc_core::run_webfarm_scale(&cfg);
        assert_eq!(p, q, "seed {seed}: faulted run must be deterministic");
    }
}

/// Fault-seeded shootout dominance, opt-in via `DC_CLAIMS_FAULTS=1`.
/// Message drops and latency storms shift every absolute number, but the
/// hot-cell ordering the claims gate on must survive: the FIFO ticket
/// queue stays fairer and better-bounded than the CAS spinner. The plan
/// carries no crash or stall windows — one-sided atomics cannot ride out
/// a crashed home (see `dc_bench::ext_shootout::run_cell`).
#[test]
fn fault_seeded_lock_shootout_dominance_holds() {
    if std::env::var("DC_CLAIMS_FAULTS").ok().as_deref() != Some("1") {
        return; // opt-in: default tier-1 stays fault-free
    }
    use dc_bench::ext_shootout::{run_cell, CELLS, HORIZON_NS};
    use dc_dlm::DesignKind;

    let cfg = dc_fabric::FaultConfig {
        horizon_ns: HORIZON_NS,
        max_crashes_per_node: 0,
        max_stalls_per_node: 0,
        drop_prob: 0.05,
        latency_windows: 2,
        latency_min_ns: dc_sim::time::ms(2),
        latency_max_ns: dc_sim::time::ms(6),
        ..Default::default()
    };
    let hot = CELLS[2];
    for seed in [7u64, 8, 9] {
        let nodes = hot.clients + 1;
        let mk = |design| {
            let plan = dc_fabric::FaultPlan::generate(seed, &cfg, nodes);
            run_cell(design, hot, Some(plan))
        };
        let cas = mk(DesignKind::CasSpin);
        let mcs = mk(DesignKind::McsTicket);
        assert!(
            mcs.fairness_cv < cas.fairness_cv,
            "seed {seed}: faulted MCS-FAA fairness CV {:.3} should beat CAS-Spin {:.3}",
            mcs.fairness_cv,
            cas.fairness_cv
        );
        assert!(
            mcs.max_wait_us < cas.max_wait_us,
            "seed {seed}: faulted MCS-FAA max wait {:.1}us should beat CAS-Spin {:.1}us",
            mcs.max_wait_us,
            cas.max_wait_us
        );
    }
}

/// Fault-seeded incast recovery, opt-in via `DC_CLAIMS_FAULTS=1`. Under a
/// seeded uniform drop rate the eRPC lane's RTO retransmit plus the
/// server's reply cache must deliver exactly-once completion for every
/// request (`run_cell` asserts none are lost), with the recovery visible
/// in the retransmit counter and the whole cell bit-deterministic.
#[test]
fn fault_seeded_incast_recovers_every_request() {
    if std::env::var("DC_CLAIMS_FAULTS").ok().as_deref() != Some("1") {
        return; // opt-in: default tier-1 stays fault-free
    }
    use dc_bench::ext_incast::{run_cell, IncastLane};
    let p = run_cell(IncastLane::Erpc, 64, 0.05);
    assert!(
        p.retransmits > 0,
        "a 5% drop plan must exercise the retransmit path"
    );
    assert!(p.goodput_rps > 0.0);
    let q = run_cell(IncastLane::Erpc, 64, 0.05);
    assert_eq!(
        p.retransmits, q.retransmits,
        "faulted incast cell must be deterministic"
    );
    assert_eq!(p.p999_us, q.p999_us);
}
