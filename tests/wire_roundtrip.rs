//! Property tests: every control-plane message type round-trips through its
//! [`Wire`] codec, and decoders reject trailing garbage instead of silently
//! truncating — the wire formats are frozen inputs to the fabric's byte-time
//! model, so codec drift would silently shift golden-baseline timings.

use proptest::prelude::*;

use nextgen_datacenter::ddss::ctrl::{AllocReq, AllocResp, FreeReq, FreeResp};
use nextgen_datacenter::ddss::Coherence;
use nextgen_datacenter::dlm::msg::DlmMsg;
use nextgen_datacenter::fabric::kstat::{KernelStats, KSTAT_REGION_LEN};
use nextgen_datacenter::fabric::NodeId;
use nextgen_datacenter::reconfig::Assignment;
use nextgen_datacenter::svc::Wire;

fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = v.encode();
    let back = T::decode(&bytes).unwrap_or_else(|| panic!("decode failed for {v:?}"));
    assert_eq!(&back, v, "round trip of {v:?}");
    // Trailing bytes must be rejected, not ignored.
    let mut longer = bytes.clone();
    longer.push(0);
    assert!(
        T::decode(&longer).is_none(),
        "decoder accepted trailing garbage for {v:?}"
    );
    // Truncation must be rejected too.
    if !bytes.is_empty() {
        assert!(
            T::decode(&bytes[..bytes.len() - 1]).is_none() || bytes.len() > KSTAT_REGION_LEN,
            "decoder accepted truncated bytes for {v:?}"
        );
    }
}

fn coherence() -> impl Strategy<Value = Coherence> {
    (0u8..7).prop_map(Coherence::from_u8)
}

fn dlm_msg() -> impl Strategy<Value = DlmMsg> {
    (
        0u8..10,
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
    )
        .prop_map(|(tag, lock, node, count, flag)| match tag {
            0 => DlmMsg::ExclReq {
                lock,
                from: NodeId(node),
                shared_seen: count,
            },
            1 => DlmMsg::ShReq {
                lock,
                from: NodeId(node),
            },
            2 => DlmMsg::Grant {
                lock,
                exclusive: flag,
            },
            3 => DlmMsg::ShRelease { lock },
            4 => DlmMsg::WaitShared {
                lock,
                waiter: NodeId(node),
                need: count,
            },
            5 => DlmMsg::SrvLock {
                lock,
                from: NodeId(node),
                exclusive: flag,
            },
            6 => DlmMsg::SrvUnlock {
                lock,
                from: NodeId(node),
            },
            7 => DlmMsg::TicketWait {
                lock,
                ticket: count,
                from: NodeId(node),
            },
            8 => DlmMsg::TicketServe {
                lock,
                serving: count,
            },
            _ => DlmMsg::LeaseSteal {
                lock,
                from: NodeId(node),
                stolen_from: NodeId(count),
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dlm_messages_round_trip(msg in dlm_msg()) {
        round_trip(&msg);
    }

    #[test]
    fn ddss_alloc_req_round_trips(len in any::<u64>(), c in coherence()) {
        round_trip(&AllocReq { len, coherence: c });
    }

    #[test]
    fn ddss_alloc_resp_round_trips(key in proptest::option::of((any::<u64>(), any::<u64>()))) {
        round_trip(&AllocResp { key });
    }

    #[test]
    fn ddss_free_messages_round_trip(id in any::<u64>(), ok in any::<bool>()) {
        round_trip(&FreeReq { id });
        round_trip(&FreeResp { ok });
    }

    #[test]
    fn sitemap_assignment_round_trips(site in any::<u32>(), t in any::<bool>()) {
        let a = Assignment { site, in_transition: t };
        round_trip(&a);
        // The wire bytes are exactly the LE map word the CAS path uses.
        prop_assert_eq!(<Assignment as Wire>::encode(&a), a.encode().to_le_bytes().to_vec());
    }

    #[test]
    fn kernel_stats_round_trip_at_region_length(
        run_queue in any::<u64>(),
        app_threads in any::<u64>(),
        busy_ns in any::<u64>(),
        version in any::<u64>(),
        conns in any::<u64>(),
        accept_queue in any::<u64>(),
    ) {
        let s = KernelStats {
            run_queue,
            app_threads,
            busy_ns,
            version,
            conns,
            accept_queue,
        };
        let bytes = s.encode();
        prop_assert_eq!(bytes.len(), KSTAT_REGION_LEN);
        prop_assert_eq!(<KernelStats as Wire>::decode(&bytes), Some(s));
    }
}

#[test]
fn decoders_reject_malformed_tags() {
    assert!(<DlmMsg as Wire>::decode(&[99, 0, 0, 0, 0]).is_none());
    assert!(<AllocResp as Wire>::decode(&[2]).is_none());
    assert!(<FreeResp as Wire>::decode(&[7]).is_none());
    assert!(<DlmMsg as Wire>::decode(&[]).is_none());
}
