//! Trace determinism: a traced run is observationally free — it changes no
//! result — and its exported artifacts are *byte-identical* across runs with
//! the same seed. Timestamps are sim-time, never wall-clock, so the Perfetto
//! JSON and the metrics snapshot are as reproducible as the numbers
//! themselves.

use nextgen_datacenter::coopcache::CacheScheme;
use nextgen_datacenter::core::{run_webfarm_traced, WebFarmCfg};
use nextgen_datacenter::fabric::FaultConfig;
use nextgen_datacenter::trace::TraceMode;

#[test]
fn traced_webfarm_artifacts_are_byte_identical() {
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Hybcc,
        proxies: 3,
        app_nodes: 2,
        num_docs: 96,
        requests: 600,
        seed: 0xDEC0DE,
        ..WebFarmCfg::default()
    };
    let (ra, ta) = run_webfarm_traced(&cfg, TraceMode::Full);
    let (rb, tb) = run_webfarm_traced(&cfg, TraceMode::Full);
    assert_eq!(ra.tps.to_bits(), rb.tps.to_bits());
    assert!(ta.events > 0, "trace captured nothing");
    assert_eq!(ta.trace_json, tb.trace_json, "Perfetto JSON diverged");
    assert_eq!(
        ta.metrics_json, tb.metrics_json,
        "metrics snapshot diverged"
    );
}

#[test]
fn traced_webfarm_under_faults_is_byte_identical() {
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 500,
        num_docs: 64,
        seed: 7,
        faults: Some((
            0xFA_017,
            FaultConfig {
                drop_prob: 0.05,
                ..FaultConfig::default()
            },
        )),
        ..WebFarmCfg::default()
    };
    let (_, ta) = run_webfarm_traced(&cfg, TraceMode::Full);
    let (_, tb) = run_webfarm_traced(&cfg, TraceMode::Full);
    assert_eq!(ta.trace_json, tb.trace_json);
    assert_eq!(ta.metrics_json, tb.metrics_json);
}

#[test]
fn different_seed_changes_the_trace() {
    let base = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 500,
        num_docs: 64,
        seed: 7,
        ..WebFarmCfg::default()
    };
    let mut other = base.clone();
    other.seed = 8;
    let (_, ta) = run_webfarm_traced(&base, TraceMode::Full);
    let (_, tb) = run_webfarm_traced(&other, TraceMode::Full);
    assert_ne!(ta.trace_json, tb.trace_json, "seed had no effect on trace");
}
