//! Trace determinism: a traced run is observationally free — it changes no
//! result — and its exported artifacts are *byte-identical* across runs with
//! the same seed. Timestamps are sim-time, never wall-clock, so the Perfetto
//! JSON and the metrics snapshot are as reproducible as the numbers
//! themselves.

use nextgen_datacenter::coopcache::CacheScheme;
use nextgen_datacenter::core::{run_webfarm_traced, WebFarmCfg};
use nextgen_datacenter::fabric::FaultConfig;
use nextgen_datacenter::trace::TraceMode;

#[test]
fn traced_webfarm_artifacts_are_byte_identical() {
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Hybcc,
        proxies: 3,
        app_nodes: 2,
        num_docs: 96,
        requests: 600,
        seed: 0xDEC0DE,
        ..WebFarmCfg::default()
    };
    let (ra, ta) = run_webfarm_traced(&cfg, TraceMode::Full);
    let (rb, tb) = run_webfarm_traced(&cfg, TraceMode::Full);
    assert_eq!(ra.tps.to_bits(), rb.tps.to_bits());
    assert!(ta.events > 0, "trace captured nothing");
    assert_eq!(ta.trace_json, tb.trace_json, "Perfetto JSON diverged");
    assert_eq!(
        ta.metrics_json, tb.metrics_json,
        "metrics snapshot diverged"
    );
}

#[test]
fn traced_webfarm_under_faults_is_byte_identical() {
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 500,
        num_docs: 64,
        seed: 7,
        faults: Some((
            0xFA_017,
            FaultConfig {
                drop_prob: 0.05,
                ..FaultConfig::default()
            },
        )),
        ..WebFarmCfg::default()
    };
    let (_, ta) = run_webfarm_traced(&cfg, TraceMode::Full);
    let (_, tb) = run_webfarm_traced(&cfg, TraceMode::Full);
    assert_eq!(ta.trace_json, tb.trace_json);
    assert_eq!(ta.metrics_json, tb.metrics_json);
}

/// The lock-design shootout, same bar as the webfarm: tracing changes no
/// stat, and the exported artifacts are byte-identical across runs —
/// clean and under a seeded drops+latency fault plan (no crash windows:
/// one-sided atomics cannot ride out a crashed home).
#[test]
fn traced_lock_shootout_is_byte_identical_and_observationally_free() {
    use dc_bench::ext_shootout::{run_cell, run_cell_traced, CELLS, HORIZON_NS};
    use nextgen_datacenter::dlm::DesignKind;
    use nextgen_datacenter::fabric::FaultPlan;

    let cell = CELLS[1];
    let design = DesignKind::McsTicket;
    let (sa, ta) = run_cell_traced(design, cell, None, TraceMode::Full);
    let (sb, tb) = run_cell_traced(design, cell, None, TraceMode::Full);
    assert!(ta.events > 0, "trace captured nothing");
    assert_eq!(ta.trace_json, tb.trace_json, "Perfetto JSON diverged");
    assert_eq!(ta.metrics_json, tb.metrics_json, "metrics diverged");
    assert_eq!(sa.acquires, sb.acquires);

    // Observationally free: the traced stats equal an untraced run's.
    let plain = run_cell(design, cell, None);
    assert_eq!(sa.acquires, plain.acquires);
    assert_eq!(sa.p99_wait_us.to_bits(), plain.p99_wait_us.to_bits());
    assert_eq!(sa.max_wait_us.to_bits(), plain.max_wait_us.to_bits());

    let fault_cfg = FaultConfig {
        horizon_ns: HORIZON_NS,
        max_crashes_per_node: 0,
        max_stalls_per_node: 0,
        drop_prob: 0.05,
        ..FaultConfig::default()
    };
    let nodes = cell.clients + 1;
    let mk = || FaultPlan::generate(0xFA_017, &fault_cfg, nodes);
    let (_, fa) = run_cell_traced(design, cell, Some(mk()), TraceMode::Full);
    let (_, fb) = run_cell_traced(design, cell, Some(mk()), TraceMode::Full);
    assert_eq!(fa.trace_json, fb.trace_json, "faulted trace diverged");
    assert_eq!(fa.metrics_json, fb.metrics_json, "faulted metrics diverged");
    assert_ne!(
        ta.trace_json, fa.trace_json,
        "the fault plan left no mark on the trace"
    );
}

/// FNV-1a 64-bit, the same construction the fabric calibration fingerprint
/// uses; good enough to pin multi-megabyte trace artifacts in a one-line
/// golden.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Pull a `"name":123` counter out of a metrics-snapshot JSON object.
fn json_counter(metrics_json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let start = metrics_json
        .find(&key)
        .unwrap_or_else(|| panic!("{name} missing from metrics snapshot"))
        + key.len();
    metrics_json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter is numeric")
}

/// The fixed workloads pinned by the engine-schedule golden: one clean run
/// and one fault-injected run, both small enough to execute in milliseconds.
fn golden_cases() -> Vec<(&'static str, WebFarmCfg)> {
    vec![
        (
            "hybcc_clean",
            WebFarmCfg {
                scheme: CacheScheme::Hybcc,
                proxies: 3,
                app_nodes: 2,
                num_docs: 96,
                requests: 600,
                seed: 0xDEC0DE,
                ..WebFarmCfg::default()
            },
        ),
        (
            "bcc_faulted",
            WebFarmCfg {
                scheme: CacheScheme::Bcc,
                requests: 500,
                num_docs: 64,
                seed: 7,
                faults: Some((
                    0xFA_017,
                    FaultConfig {
                        drop_prob: 0.05,
                        ..FaultConfig::default()
                    },
                )),
                ..WebFarmCfg::default()
            },
        ),
    ]
}

/// The engine-schedule golden: trace/metrics artifact hashes plus raw
/// scheduler counters for fixed seeds, captured on the pre-timer-wheel
/// `BinaryHeap` engine and committed. The hierarchical-wheel engine must
/// reproduce every byte — the poll/event/timer counts are a highly
/// sensitive detector for any reordering or extra wake.
///
/// Regenerate (only for an intentional schedule change) with:
/// `DC_BLESS_ENGINE_GOLDEN=1 cargo test --test trace_determinism`.
#[test]
fn engine_schedule_matches_committed_golden() {
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/engine_schedule.txt"
    );
    let mut lines = Vec::new();
    for (label, cfg) in golden_cases() {
        let (res, a) = run_webfarm_traced(&cfg, TraceMode::Full);
        lines.push(format!(
            "{label} tps_bits={:016x} trace_fnv={:016x} trace_events={} \
             metrics_fnv={:016x} polls={} events={} timers_fired={}",
            res.tps.to_bits(),
            fnv1a(a.trace_json.as_bytes()),
            a.events,
            fnv1a(a.metrics_json.as_bytes()),
            json_counter(&a.metrics_json, "sim.polls"),
            json_counter(&a.metrics_json, "sim.events"),
            json_counter(&a.metrics_json, "sim.timers_fired"),
        ));
    }
    let actual = lines.join("\n") + "\n";
    if std::env::var("DC_BLESS_ENGINE_GOLDEN").is_ok() {
        std::fs::write(golden_path, &actual).expect("writing golden");
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("missing tests/golden/engine_schedule.txt — bless it first");
    assert_eq!(
        actual, expected,
        "engine schedule diverged from the committed golden: the executor \
         no longer reproduces the pre-overhaul timer/wake order"
    );
}

/// `dc-bench flame` output is a pure function of (scenario, seed): the
/// collapsed stacks and the latency-breakdown report reproduce
/// byte-for-byte, and every sampled request's stage attribution is an
/// exact partition of its end-to-end time.
#[test]
fn flame_profile_is_byte_identical_per_seed() {
    use dc_bench::flame;
    let a = flame::profile("fig5a", 42);
    let b = flame::profile("fig5a_lock_shared", 42);
    assert!(a.events > 0, "profile traced nothing");
    assert!(!a.collapsed.is_empty());
    assert_eq!(a.collapsed, b.collapsed, "collapsed stacks diverged");
    assert_eq!(
        flame::report(&a).to_json(),
        flame::report(&b).to_json(),
        "breakdown report diverged"
    );
    for r in &a.requests {
        assert_eq!(
            r.stage_ns.iter().sum::<u64>(),
            r.total_ns,
            "stage attribution is not an exact partition"
        );
    }
}

/// The same bar for a traced webfarm: critical-path analysis over the raw
/// events finds the sampled request spans and partitions each exactly.
#[test]
fn webfarm_latency_breakdown_partitions_every_request() {
    use nextgen_datacenter::trace::critical;
    let cfg = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 400,
        num_docs: 64,
        seed: 11,
        ..WebFarmCfg::default()
    };
    let (_, art) = run_webfarm_traced(&cfg, TraceMode::Full);
    let reqs = critical::analyze_requests(&art.raw_events);
    assert!(
        reqs.len() >= 400,
        "expected a request span per issued request, got {}",
        reqs.len()
    );
    for r in &reqs {
        assert_eq!(r.stage_ns.iter().sum::<u64>(), r.total_ns);
    }
    let agg = critical::aggregate(&reqs);
    assert_eq!(agg.requests, reqs.len() as u64);
    let stage_total: u64 = agg.stages.iter().map(|s| s.total_ns).sum();
    assert_eq!(agg.total_ns, stage_total);
}

#[test]
fn different_seed_changes_the_trace() {
    let base = WebFarmCfg {
        scheme: CacheScheme::Bcc,
        requests: 500,
        num_docs: 64,
        seed: 7,
        ..WebFarmCfg::default()
    };
    let mut other = base.clone();
    other.seed = 8;
    let (_, ta) = run_webfarm_traced(&base, TraceMode::Full);
    let (_, tb) = run_webfarm_traced(&other, TraceMode::Full);
    assert_ne!(ta.trace_json, tb.trace_json, "seed had no effect on trace");
}

/// The at-scale open-loop webfarm, scaled down to tier-1 size: the full
/// report surface (both rendered tables and the exact stage partition)
/// must be byte-identical across runs of the same seed — clean and under
/// a seeded fault plan — and a different seed must move it.
#[test]
fn webfarm_scale_report_is_byte_identical_per_seed() {
    use dc_bench::ext_webfarm::{accounting_table, cells, run_sweep, sweep_table};
    use nextgen_datacenter::core::ScaleFarmCfg;

    let scaled = ScaleFarmCfg {
        proxies: 16,
        app_nodes: 8,
        clients: 3_000,
        backend_workers: 1,
        horizon_ns: 600_000_000,
        warmup_ns: 200_000_000,
        ..dc_bench::ext_webfarm::gate_cfg()
    };
    let sweep = cells();
    let render = |cfg: &ScaleFarmCfg| {
        let points = run_sweep(cfg, &sweep);
        let text = format!(
            "{}{}",
            sweep_table(&points).render(),
            accounting_table(&points).render()
        );
        (text, points)
    };

    let (ta, pa) = render(&scaled);
    let (tb, pb) = render(&scaled);
    assert_eq!(ta, tb, "same seed must render byte-identical tables");
    for ((_, a), (_, b)) in pa.iter().zip(&pb) {
        assert_eq!(a, b, "full point state (incl. breakdown) must replay");
    }

    let (tc, _) = render(&ScaleFarmCfg {
        seed: 43,
        ..scaled.clone()
    });
    assert_ne!(ta, tc, "a different seed must perturb the tables");

    // Under a seeded fault plan the same bar holds.
    let faulted = ScaleFarmCfg {
        faults: Some((
            0xFA_5CA1E,
            FaultConfig {
                drop_prob: 0.05,
                ..FaultConfig::default()
            },
        )),
        ..scaled.clone()
    };
    let (fa, fpa) = render(&faulted);
    let (fb, _) = render(&faulted);
    assert_eq!(fa, fb, "faulted runs must render byte-identical tables");
    assert_ne!(fa, ta, "the fault plan must have an observable effect");
    for (_, p) in &fpa {
        assert_eq!(p.conservation_gap, 0, "conservation under faults: {p:?}");
    }
}

/// The sharded-engine contract at the report surface: the full rendered
/// `ext_webfarm_scale` report (tables + every point, including the stage
/// partition) is byte-identical at 1, 2, and 4 shards — clean and under a
/// seeded fault plan. Shard count trades wall-clock for threads and must
/// never leak into any artifact.
#[test]
fn webfarm_scale_report_is_byte_identical_across_shard_counts() {
    use dc_bench::ext_webfarm::{accounting_table, cells, run_sweep, sweep_table};
    use nextgen_datacenter::core::ScaleFarmCfg;

    let scaled = ScaleFarmCfg {
        proxies: 16,
        app_nodes: 8,
        clients: 3_000,
        backend_workers: 1,
        horizon_ns: 600_000_000,
        warmup_ns: 200_000_000,
        ..dc_bench::ext_webfarm::gate_cfg()
    };
    let faulted = ScaleFarmCfg {
        faults: Some((
            0xFA_5CA1E,
            FaultConfig {
                drop_prob: 0.05,
                ..FaultConfig::default()
            },
        )),
        ..scaled.clone()
    };
    let sweep: Vec<_> = cells()
        .into_iter()
        .filter(|c| c.load_x == 0.9 || c.load_x == 0.3)
        .collect();
    let render = |cfg: &ScaleFarmCfg, shards: usize| {
        let cfg = ScaleFarmCfg {
            shards: Some(shards),
            ..cfg.clone()
        };
        let points = run_sweep(&cfg, &sweep);
        let text = format!(
            "{}{}",
            sweep_table(&points).render(),
            accounting_table(&points).render()
        );
        (text, points)
    };

    for cfg in [&scaled, &faulted] {
        let label = if cfg.faults.is_some() {
            "faulted"
        } else {
            "clean"
        };
        let (t1, p1) = render(cfg, 1);
        for shards in [2usize, 4] {
            let (tn, pn) = render(cfg, shards);
            assert_eq!(
                t1, tn,
                "{label}: {shards}-shard tables diverged from single-shard"
            );
            for ((_, a), (_, b)) in p1.iter().zip(&pn) {
                assert_eq!(a, b, "{label}: {shards}-shard point state diverged");
            }
        }
    }
}

/// Single-thread ≡ N-thread at the BenchReport layer for a cheap
/// registered scenario: `fig5a_lock_shared` does not run on the sharded
/// engine, so its report must be byte-identical no matter what the
/// process-wide shard override says — the knob must not leak into
/// unsharded scenarios.
#[test]
fn fig5a_report_ignores_the_shard_override() {
    use nextgen_datacenter::core::set_shards_override;

    let base = dc_bench::scenario::fig5a_report().to_json();
    for shards in [2usize, 4] {
        set_shards_override(Some(shards));
        let json = dc_bench::scenario::fig5a_report().to_json();
        set_shards_override(None);
        assert_eq!(base, json, "shard override {shards} leaked into fig5a");
    }
}

/// The incast sweep rides the unsharded engine, so its report — goodput,
/// tail latencies, CC marks, QP gauges across all 12 (lane, fan-in) cells —
/// must be byte-identical at every `DC_SIM_SHARDS` override. The knob is a
/// wall-clock lever for sharded scenarios, never a behavioural one.
#[test]
fn ext_incast_report_ignores_the_shard_override() {
    use nextgen_datacenter::core::set_shards_override;

    let base = dc_bench::scenario::ext_incast_report().to_json();
    for shards in [2usize, 4] {
        set_shards_override(Some(shards));
        let json = dc_bench::scenario::ext_incast_report().to_json();
        set_shards_override(None);
        assert_eq!(base, json, "shard override {shards} leaked into ext_incast");
    }
}

/// Same contract with the fault plane armed: seeded drops trigger real
/// retransmits and reply-cache hits, and the resulting report — including
/// the retransmission counts themselves — replays byte-identically per
/// seed at every shard override.
#[test]
fn ext_incast_report_is_deterministic_under_seeded_drops() {
    use nextgen_datacenter::core::set_shards_override;

    let base = dc_bench::scenario::ext_incast_report_with(0.02).to_json();
    assert!(
        base.contains("retx"),
        "drop-rate report must carry the retransmit column"
    );
    for shards in [2usize, 4] {
        set_shards_override(Some(shards));
        let json = dc_bench::scenario::ext_incast_report_with(0.02).to_json();
        set_shards_override(None);
        assert_eq!(
            base, json,
            "shard override {shards} leaked into the fault-seeded incast sweep"
        );
    }
}
