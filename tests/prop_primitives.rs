//! Property-based tests of the core data structures: allocator, LRU store,
//! framing, lock-word encoding, Zipf sampling, and executor timer ordering.

use proptest::prelude::*;

use nextgen_datacenter::ddss::alloc::FreeListAllocator;
use nextgen_datacenter::coopcache::LruStore;
use nextgen_datacenter::dlm::LockWord;
use nextgen_datacenter::fabric::NodeId;
use nextgen_datacenter::sockets::flow::{frame, Reassembler};
use nextgen_datacenter::workloads::Zipf;

proptest! {
    /// Allocated blocks never overlap and never exceed capacity; freeing
    /// everything restores the full capacity in one fragment.
    #[test]
    fn allocator_blocks_are_disjoint_and_conserved(
        sizes in prop::collection::vec(1usize..300, 1..40)
    ) {
        let mut a = FreeListAllocator::new(4096);
        let mut live: Vec<(usize, usize)> = Vec::new();
        for s in &sizes {
            if let Some(off) = a.allocate(*s) {
                let end = off + s;
                prop_assert!(end <= 4096);
                for &(o, l) in &live {
                    let l_end = o + l.div_ceil(8) * 8;
                    let s_end = off + s.div_ceil(8) * 8;
                    prop_assert!(s_end <= o || off >= l_end,
                        "overlap: new ({off},{s}) vs live ({o},{l})");
                }
                live.push((off, *s));
            }
        }
        prop_assert!(a.in_use() <= a.capacity());
        for (off, s) in live.drain(..) {
            a.free(off, s);
        }
        prop_assert_eq!(a.available(), 4096);
        prop_assert_eq!(a.fragments(), 1);
    }

    /// LRU bookkeeping: bytes_used never exceeds capacity; a cached doc is
    /// always retrievable until evicted; eviction lists are consistent.
    #[test]
    fn lru_never_overcommits(
        ops in prop::collection::vec((0u32..30, 1usize..600), 1..80)
    ) {
        let mut s = LruStore::new(2048);
        let mut resident: std::collections::HashSet<u32> = Default::default();
        for (doc, size) in ops {
            if resident.contains(&doc) {
                prop_assert!(s.get(doc).is_some());
                continue;
            }
            match s.insert(doc, size) {
                Some((_, evicted)) => {
                    for (v, _, _) in evicted {
                        prop_assert!(resident.remove(&v), "evicted non-resident {v}");
                    }
                    resident.insert(doc);
                }
                None => prop_assert!(size > 2048),
            }
            prop_assert!(s.bytes_used() <= 2048);
            prop_assert_eq!(s.len(), resident.len());
        }
    }

    /// Any message reassembles exactly from its frames at any capacity.
    #[test]
    fn framing_round_trips(
        data in prop::collection::vec(any::<u8>(), 0..5000),
        cap in 10usize..9000
    ) {
        let chunks = frame(&data, cap);
        for c in &chunks {
            prop_assert!(c.len() <= cap);
        }
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &chunks {
            prop_assert!(out.is_none(), "completed early");
            out = r.feed(c);
        }
        prop_assert_eq!(&out.expect("incomplete")[..], &data[..]);
    }

    /// Lock words round trip for every tail/shared combination, and a
    /// shared FAA never corrupts the tail below u32 overflow.
    #[test]
    fn lock_word_round_trips(tail in prop::option::of(0u32..u32::MAX - 1), shared in any::<u32>()) {
        let w = nextgen_datacenter::dlm::LockWord {
            tail: tail.map(NodeId),
            shared,
        };
        prop_assert_eq!(LockWord::decode(w.encode()), w);
        if shared < u32::MAX {
            let bumped = LockWord::decode(w.encode() + 1);
            prop_assert_eq!(bumped.tail, w.tail);
            prop_assert_eq!(bumped.shared, shared + 1);
        }
    }

    /// Zipf samples stay in range and the head outweighs the tail for any
    /// positive alpha.
    #[test]
    fn zipf_is_well_formed(n in 2usize..200, alpha in 0.1f64..1.5, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = nextgen_datacenter::sim::rng::seeded_rng(seed);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            total += 1;
            if r < n.div_ceil(2) {
                head += 1;
            }
        }
        // The more popular half receives at least its fair share of draws
        // (with slack for sampling noise at near-uniform alphas).
        prop_assert!(
            head as f64 >= 0.44 * total as f64,
            "head {head} of {total}"
        );
        // PMF is a distribution.
        let sum: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Executor timers fire in deadline order regardless of registration
    /// order, and the clock ends at the maximum deadline.
    #[test]
    fn timers_fire_in_deadline_order(durations in prop::collection::vec(0u64..10_000, 1..50)) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let sim = nextgen_datacenter::sim::Sim::new();
        let fired: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &d in &durations {
            let f = Rc::clone(&fired);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(d).await;
                f.borrow_mut().push(h.now());
            });
        }
        sim.run();
        let fired = fired.borrow();
        let mut sorted = durations.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&*fired, &sorted);
        prop_assert_eq!(sim.now(), *sorted.last().unwrap());
    }
}
