//! Property-based tests of the core data structures: allocator, LRU store,
//! framing, lock-word encoding, Zipf sampling, and executor timer ordering.

use proptest::prelude::*;

use nextgen_datacenter::coopcache::LruStore;
use nextgen_datacenter::ddss::alloc::FreeListAllocator;
use nextgen_datacenter::dlm::LockWord;
use nextgen_datacenter::fabric::NodeId;
use nextgen_datacenter::sockets::flow::{frame, Reassembler};
use nextgen_datacenter::workloads::Zipf;

proptest! {
    /// Allocated blocks never overlap and never exceed capacity; freeing
    /// everything restores the full capacity in one fragment.
    #[test]
    fn allocator_blocks_are_disjoint_and_conserved(
        sizes in prop::collection::vec(1usize..300, 1..40)
    ) {
        let mut a = FreeListAllocator::new(4096);
        let mut live: Vec<(usize, usize)> = Vec::new();
        for s in &sizes {
            if let Some(off) = a.allocate(*s) {
                let end = off + s;
                prop_assert!(end <= 4096);
                for &(o, l) in &live {
                    let l_end = o + l.div_ceil(8) * 8;
                    let s_end = off + s.div_ceil(8) * 8;
                    prop_assert!(s_end <= o || off >= l_end,
                        "overlap: new ({off},{s}) vs live ({o},{l})");
                }
                live.push((off, *s));
            }
        }
        prop_assert!(a.in_use() <= a.capacity());
        for (off, s) in live.drain(..) {
            a.free(off, s);
        }
        prop_assert_eq!(a.available(), 4096);
        prop_assert_eq!(a.fragments(), 1);
    }

    /// LRU bookkeeping: bytes_used never exceeds capacity; a cached doc is
    /// always retrievable until evicted; eviction lists are consistent.
    #[test]
    fn lru_never_overcommits(
        ops in prop::collection::vec((0u32..30, 1usize..600), 1..80)
    ) {
        let mut s = LruStore::new(2048);
        let mut resident: std::collections::HashSet<u32> = Default::default();
        for (doc, size) in ops {
            if resident.contains(&doc) {
                prop_assert!(s.get(doc).is_some());
                continue;
            }
            match s.insert(doc, size) {
                Some((_, evicted)) => {
                    for (v, _, _) in evicted {
                        prop_assert!(resident.remove(&v), "evicted non-resident {v}");
                    }
                    resident.insert(doc);
                }
                None => prop_assert!(size > 2048),
            }
            prop_assert!(s.bytes_used() <= 2048);
            prop_assert_eq!(s.len(), resident.len());
        }
    }

    /// Any message reassembles exactly from its frames at any capacity.
    #[test]
    fn framing_round_trips(
        data in prop::collection::vec(any::<u8>(), 0..5000),
        cap in 10usize..9000
    ) {
        let chunks = frame(&data, cap);
        for c in &chunks {
            prop_assert!(c.len() <= cap);
        }
        let mut r = Reassembler::new();
        let mut out = None;
        for c in &chunks {
            prop_assert!(out.is_none(), "completed early");
            out = r.feed(c);
        }
        prop_assert_eq!(&out.expect("incomplete")[..], &data[..]);
    }

    /// Lock words round trip for every tail/shared combination, and a
    /// shared FAA never corrupts the tail below u32 overflow.
    #[test]
    fn lock_word_round_trips(tail in prop::option::of(0u32..u32::MAX - 1), shared in any::<u32>()) {
        let w = nextgen_datacenter::dlm::LockWord {
            tail: tail.map(NodeId),
            shared,
        };
        prop_assert_eq!(LockWord::decode(w.encode()), w);
        if shared < u32::MAX {
            let bumped = LockWord::decode(w.encode() + 1);
            prop_assert_eq!(bumped.tail, w.tail);
            prop_assert_eq!(bumped.shared, shared + 1);
        }
    }

    /// Zipf samples stay in range and the head outweighs the tail for any
    /// positive alpha.
    #[test]
    fn zipf_is_well_formed(n in 2usize..200, alpha in 0.1f64..1.5, seed in any::<u64>()) {
        let z = Zipf::new(n, alpha);
        let mut rng = nextgen_datacenter::sim::rng::seeded_rng(seed);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..500 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            total += 1;
            if r < n.div_ceil(2) {
                head += 1;
            }
        }
        // The more popular half receives at least its fair share of draws
        // (with slack for sampling noise at near-uniform alphas).
        prop_assert!(
            head as f64 >= 0.44 * total as f64,
            "head {head} of {total}"
        );
        // PMF is a distribution.
        let sum: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// DLM safety/liveness over random interleavings: clients cycle
    /// lock→hold→unlock on randomly chosen locks with random arrival and
    /// hold times; no lock ever has two exclusive holders at once, and
    /// every requested cycle completes (no waiter is ever orphaned).
    #[test]
    fn dlm_random_interleavings_are_safe_and_drain(
        plans in prop::collection::vec(
            // (lock id, exclusive, arrive µs, hold µs, cycles) per client
            (0u32..3, any::<bool>(), 0u64..2_000, 10u64..300, 1usize..4),
            1..8
        )
    ) {
        use std::cell::Cell;
        use std::rc::Rc;
        use nextgen_datacenter::dlm::{DlmConfig, LockMode, NcosedDlm};
        use nextgen_datacenter::fabric::{Cluster, FabricModel};
        use nextgen_datacenter::sim::time::{ms, us};

        let sim = nextgen_datacenter::sim::Sim::new();
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 9);
        let members: Vec<NodeId> = (0..9).map(NodeId).collect();
        let dlm = NcosedDlm::new(&cluster, DlmConfig::default(), NodeId(0), 3, &members);

        // Per-lock count of concurrent exclusive holders.
        let excl: Rc<[Cell<i32>; 3]> = Rc::default();
        let violations: Rc<Cell<u32>> = Rc::default();
        let completed: Rc<Cell<usize>> = Rc::default();
        let expect: usize = plans.iter().map(|p| p.4).sum();
        for (i, &(lock, exclusive, arrive, hold, cycles)) in plans.iter().enumerate() {
            let client = dlm.client(NodeId(1 + i as u32));
            let excl = Rc::clone(&excl);
            let violations = Rc::clone(&violations);
            let completed = Rc::clone(&completed);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(us(arrive)).await;
                for _ in 0..cycles {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    client.lock(lock, mode).await;
                    if exclusive {
                        if excl[lock as usize].get() > 0 {
                            violations.set(violations.get() + 1);
                        }
                        excl[lock as usize].set(excl[lock as usize].get() + 1);
                    } else if excl[lock as usize].get() > 0 {
                        violations.set(violations.get() + 1);
                    }
                    h.sleep(us(hold)).await;
                    if exclusive {
                        excl[lock as usize].set(excl[lock as usize].get() - 1);
                    }
                    client.unlock(lock).await;
                    completed.set(completed.get() + 1);
                }
            });
        }
        let reached = sim.run_until(ms(500));
        prop_assert_eq!(reached, ms(500), "lock traffic wedged the executor");
        prop_assert_eq!(violations.get(), 0, "exclusive lock doubly granted");
        prop_assert_eq!(completed.get(), expect, "a lock waiter never drained");
        for c in excl.iter() {
            prop_assert_eq!(c.get(), 0);
        }
    }

    /// Executor timers fire in deadline order regardless of registration
    /// order, and the clock ends at the maximum deadline.
    #[test]
    fn timers_fire_in_deadline_order(durations in prop::collection::vec(0u64..10_000, 1..50)) {
        use std::cell::RefCell;
        use std::rc::Rc;
        let sim = nextgen_datacenter::sim::Sim::new();
        let fired: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &d in &durations {
            let f = Rc::clone(&fired);
            let h = sim.handle();
            sim.spawn(async move {
                h.sleep(d).await;
                f.borrow_mut().push(h.now());
            });
        }
        sim.run();
        let fired = fired.borrow();
        let mut sorted = durations.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&*fired, &sorted);
        prop_assert_eq!(sim.now(), *sorted.last().unwrap());
    }
}

proptest! {
    /// [`StreamHist`] quantiles are within one bucket width of the exact
    /// nearest-rank answer over the raw samples, for any sample set and any
    /// quantile; count/min/max/mean stay exact.
    #[test]
    fn stream_hist_quantile_error_is_bounded(
        samples in prop::collection::vec(0u64..=1_000_000_000_000, 1..400),
        q_bp in 0u32..=10_000,
    ) {
        use nextgen_datacenter::trace::StreamHist;
        let q = q_bp as f64 / 10_000.0;
        let mut h = StreamHist::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let approx = h.quantile_ns(q);
        prop_assert!(
            approx.abs_diff(exact) <= StreamHist::bucket_width(exact),
            "q={q}: approx {approx} vs exact {exact} (width {})",
            StreamHist::bucket_width(exact)
        );
        prop_assert_eq!(h.count(), sorted.len() as u64);
        prop_assert_eq!(h.min_ns(), sorted[0]);
        prop_assert_eq!(h.max_ns(), *sorted.last().unwrap());
        let mean = sorted.iter().map(|&v| v as u128).sum::<u128>() / sorted.len() as u128;
        prop_assert_eq!(h.mean_ns(), mean as u64);
    }

    /// Merging shard histograms is associative, commutative, and lossless:
    /// any merge tree over any split equals recording every sample into one
    /// histogram directly.
    #[test]
    fn stream_hist_merge_is_associative_and_lossless(
        a in prop::collection::vec(0u64..=1_000_000_000_000, 0..150),
        b in prop::collection::vec(0u64..=1_000_000_000_000, 0..150),
        c in prop::collection::vec(0u64..=1_000_000_000_000, 0..150),
    ) {
        use nextgen_datacenter::trace::StreamHist;
        let mk = |v: &[u64]| {
            let mut h = StreamHist::new();
            for &x in v {
                h.record(x);
            }
            h
        };
        // ((a ∪ b) ∪ c)
        let mut ab_c = mk(&a);
        ab_c.merge(&mk(&b));
        ab_c.merge(&mk(&c));
        // (a ∪ (b ∪ c)) — and b∪c merged the other way round for
        // commutativity.
        let mut cb = mk(&c);
        cb.merge(&mk(&b));
        let mut a_cb = mk(&a);
        a_cb.merge(&cb);
        // Everything recorded directly.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = mk(&all);
        prop_assert_eq!(ab_c.summary(), a_cb.summary());
        prop_assert_eq!(ab_c.summary(), direct.summary());
        prop_assert_eq!(ab_c.nonzero_buckets(), direct.nonzero_buckets());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Open-loop Poisson arrivals: the empirical mean interarrival matches
    /// 1/λ and the interarrival CV is ≈1 (the exponential signature), for
    /// any seed and a wide band of rates.
    #[test]
    fn arrival_poisson_mean_and_cv_match_the_rate(
        seed in any::<u64>(),
        rate in 50.0f64..5_000.0,
    ) {
        use nextgen_datacenter::workloads::ArrivalProcess;
        let mut p = ArrivalProcess::poisson(seed, rate);
        let n = 5_000usize;
        let mut prev = 0u64;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let t = p.next_ns();
            prop_assert!(t >= prev, "arrivals must be non-decreasing");
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let expect = 1e9 / rate;
        let dev = (mean - expect).abs() / expect;
        prop_assert!(dev < 0.10, "mean {mean:.0}ns vs 1/λ {expect:.0}ns ({dev:.3})");
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        prop_assert!((cv - 1.0).abs() < 0.10, "Poisson CV {cv:.3} should be ~1");
    }

    /// Bursty (MMPP-2) arrivals keep the configured long-run rate but are
    /// overdispersed: interarrival CV strictly above the Poisson value.
    #[test]
    fn arrival_bursty_preserves_rate_but_is_overdispersed(seed in any::<u64>()) {
        use nextgen_datacenter::workloads::{ArrivalProcess, BurstyCfg};
        let rate = 1_000.0;
        let mut b = ArrivalProcess::bursty(seed, rate, BurstyCfg::default());
        // Gaps are phase-correlated, so the rate estimator converges like
        // sqrt(phase cycles), not sqrt(draws): 60k draws ≈ 300 cycles.
        let n = 60_000usize;
        let mut prev = 0u64;
        let mut gaps = Vec::with_capacity(n);
        for _ in 0..n {
            let t = b.next_ns();
            prop_assert!(t >= prev);
            gaps.push((t - prev) as f64);
            prev = t;
        }
        let mean = gaps.iter().sum::<f64>() / n as f64;
        let expect = 1e9 / rate;
        let dev = (mean - expect).abs() / expect;
        prop_assert!(dev < 0.25, "long-run mean {mean:.0}ns vs {expect:.0}ns ({dev:.3})");
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        prop_assert!(cv > 1.15, "bursty CV {cv:.3} must exceed Poisson's 1.0");
    }

    /// Same seed ⇒ byte-identical stream; different seed ⇒ divergence.
    /// Holds for both processes — the determinism contract every
    /// reproducible scenario rides on.
    #[test]
    fn arrival_streams_are_byte_identical_per_seed(
        seed in any::<u64>(),
        bursty in any::<bool>(),
    ) {
        use nextgen_datacenter::workloads::{ArrivalProcess, BurstyCfg};
        let mk = |s: u64| if bursty {
            ArrivalProcess::bursty(s, 800.0, BurstyCfg::default())
        } else {
            ArrivalProcess::poisson(s, 800.0)
        };
        let (mut a, mut b, mut c) = (mk(seed), mk(seed), mk(seed.wrapping_add(1)));
        let mut diverged = false;
        for _ in 0..500 {
            let (x, y) = (a.next_ns(), b.next_ns());
            prop_assert_eq!(x, y, "same seed must replay identically");
            diverged |= c.next_ns() != x;
        }
        prop_assert!(diverged, "different seeds must diverge within 500 draws");
    }

    /// Merging per-client streams preserves the global rate (superposition
    /// of Poisson streams is Poisson at the summed rate) and emits a
    /// time-ordered sequence drawing from every stream.
    #[test]
    fn arrival_merge_preserves_global_rate_and_order(
        seed in any::<u64>(),
        n_streams in 4usize..40,
    ) {
        use nextgen_datacenter::workloads::{ArrivalProcess, MergedArrivals};
        let per_rate = 200.0;
        let streams: Vec<ArrivalProcess> = (0..n_streams)
            .map(|i| ArrivalProcess::poisson(seed.wrapping_add(i as u64 * 7919), per_rate))
            .collect();
        let mut m = MergedArrivals::new(streams);
        let horizon = 5_000_000_000u64; // 5 s
        let mut count = 0u64;
        let mut prev = 0u64;
        let mut seen = vec![false; n_streams];
        loop {
            let (t, idx) = m.next();
            if t >= horizon {
                break;
            }
            prop_assert!(t >= prev, "merge must be time-ordered");
            prop_assert!((idx as usize) < n_streams);
            seen[idx as usize] = true;
            prev = t;
            count += 1;
        }
        let expect = per_rate * n_streams as f64 * 5.0;
        let dev = (count as f64 - expect).abs() / expect;
        prop_assert!(dev < 0.15, "merged {count} events vs expected {expect:.0} ({dev:.3})");
        prop_assert!(seen.iter().all(|&s| s), "every stream must surface in the merge");
    }
}

proptest! {
    /// Credit accounting is a bounded counter: under any interleaving of
    /// takes and (legal) releases, available credits stay in `[0, cap]`,
    /// a take at zero refuses, and taken+available always equals cap.
    #[test]
    fn erpc_credits_never_go_negative_or_past_cap(
        cap in 1u32..64,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        use nextgen_datacenter::sockets::erpc::Credits;
        let mut c = Credits::new(cap);
        let mut outstanding = 0u32;
        for take in ops {
            if take {
                let had = c.available();
                if c.try_take() {
                    prop_assert!(had > 0, "take succeeded with no credits");
                    outstanding += 1;
                } else {
                    prop_assert_eq!(had, 0, "take refused with credits available");
                }
            } else if outstanding > 0 {
                c.release();
                outstanding -= 1;
            }
            prop_assert!(c.available() <= c.cap());
            prop_assert_eq!(c.available() + outstanding, cap,
                "credits must be conserved");
        }
    }

    /// The AIMD rate machine never escapes `[floor_bps, link_bps]`, for any
    /// seed and any interleaving of ack RTTs (spanning both Timely bands)
    /// and ECN marks.
    #[test]
    fn erpc_rate_stays_within_floor_and_link(
        seed in any::<u64>(),
        events in prop::collection::vec((any::<bool>(), 0u64..2_000_000), 1..300),
    ) {
        use nextgen_datacenter::sockets::erpc::{CcConfig, CongestionState};
        let cfg = CcConfig::default();
        let mut cs = CongestionState::new(cfg, seed);
        prop_assert!(cs.rate_bps() >= cfg.floor_bps);
        prop_assert!(cs.rate_bps() <= cfg.link_bps);
        for (mark, rtt_ns) in events {
            if mark {
                cs.on_mark();
            } else {
                cs.on_ack(rtt_ns);
            }
            prop_assert!(cs.rate_bps() >= cfg.floor_bps,
                "rate {} fell below the floor", cs.rate_bps());
            prop_assert!(cs.rate_bps() <= cfg.link_bps,
                "rate {} exceeded the link", cs.rate_bps());
            prop_assert!(cs.gap_ns(8192) > 0, "pacing gap must stay positive");
        }
    }

    /// Two symmetric AIMD sessions sharing one link converge to the fair
    /// share regardless of their (different) seeded start rates: additive
    /// increase while the link has headroom, synchronized multiplicative
    /// decrease when the offered sum exceeds it — the classic Chiu–Jain
    /// dynamics. Time-averaged over the second half of the run, each
    /// session holds 50% ± 10% of the aggregate.
    #[test]
    fn erpc_aimd_converges_to_fair_share_for_two_sessions(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        use nextgen_datacenter::sockets::erpc::{CcConfig, CongestionState};
        let cfg = CcConfig::default();
        let mut a = CongestionState::new(cfg, seed_a);
        let mut b = CongestionState::new(cfg, seed_b);
        let rounds = 4_000usize;
        let (mut sum_a, mut sum_b) = (0u128, 0u128);
        for i in 0..rounds {
            let congested = a.rate_bps() + b.rate_bps() > cfg.link_bps;
            let rtt = if congested { cfg.rtt_high_ns } else { cfg.rtt_low_ns };
            a.on_ack(rtt);
            b.on_ack(rtt);
            if i >= rounds / 2 {
                sum_a += a.rate_bps() as u128;
                sum_b += b.rate_bps() as u128;
            }
        }
        let share = sum_a as f64 / (sum_a + sum_b) as f64;
        prop_assert!((share - 0.5).abs() < 0.10,
            "session A settled at {share:.3} of the aggregate, expected ~0.5");
    }

    /// The immediate-word header round-trips exactly over its full valid
    /// range: every field survives encode → decode unchanged.
    #[test]
    fn erpc_imm_header_round_trips(
        kind in 0u8..4,
        ece in any::<bool>(),
        op in any::<u8>(),
        session in any::<u16>(),
        seq in 0u32..=nextgen_datacenter::sockets::erpc::SEQ_MASK,
        port in any::<u16>(),
    ) {
        use nextgen_datacenter::sockets::erpc::{decode_imm, encode_imm, ImmHeader};
        let h = ImmHeader { kind, ece, op, session, seq, port };
        prop_assert_eq!(decode_imm(encode_imm(h)), h);
    }

    /// The header layout fills all 64 bits with no gaps, so decode/encode
    /// is a bijection on the whole immediate word — no information can hide
    /// in unused bits.
    #[test]
    fn erpc_imm_word_decode_encode_is_a_bijection(imm in any::<u64>()) {
        use nextgen_datacenter::sockets::erpc::{decode_imm, encode_imm};
        prop_assert_eq!(encode_imm(decode_imm(imm)), imm);
    }
}
