//! Failure injection: the services must degrade gracefully — never
//! deadlock, never serve wrong bytes — when nodes slow down, caches
//! thrash, heaps exhaust, or lock holders stall.

use std::rc::Rc;

use nextgen_datacenter::coopcache::{
    Backend, BackendCfg, CacheCfg, CacheScheme, CoopCache, ServeOutcome,
};
use nextgen_datacenter::ddss::{Coherence, Ddss, DdssConfig};
use nextgen_datacenter::dlm::{DlmConfig, LockMode, NcosedDlm};
use nextgen_datacenter::fabric::{Cluster, FabricModel, NodeId};
use nextgen_datacenter::reconfig::{AdaptCfg, Reconfigurator, SiteMap};
use nextgen_datacenter::resmon::{Monitor, MonitorCfg, MonitorScheme};
use nextgen_datacenter::sim::time::{ms, secs};
use nextgen_datacenter::sim::Sim;
use nextgen_datacenter::workloads::FileSet;

/// A lock holder that stalls for a long time delays its successors but the
/// chain drains completely once it releases — no waiter is orphaned.
#[test]
fn stalled_lock_holder_delays_but_never_orphans() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 6);
    let members: Vec<NodeId> = (0..6).map(NodeId).collect();
    let dlm = NcosedDlm::new(&cluster, DlmConfig::default(), NodeId(0), 1, &members);

    // The holder sits on the lock for a full simulated second.
    let holder = dlm.client(NodeId(1));
    let h = sim.handle();
    let hh = h.clone();
    sim.spawn(async move {
        holder.lock(0, LockMode::Exclusive).await;
        hh.sleep(secs(1)).await;
        holder.unlock(0).await;
    });
    let granted: Rc<std::cell::Cell<u32>> = Rc::default();
    for n in 2..6u32 {
        let c = dlm.client(NodeId(n));
        let g = Rc::clone(&granted);
        let hh = h.clone();
        sim.spawn(async move {
            hh.sleep(ms(1)).await;
            c.lock(
                0,
                if n % 2 == 0 {
                    LockMode::Shared
                } else {
                    LockMode::Exclusive
                },
            )
            .await;
            g.set(g.get() + 1);
            c.unlock(0).await;
        });
    }
    // Nothing is granted while the holder stalls…
    sim.run_until(ms(900));
    assert_eq!(granted.get(), 0);
    // …and everything drains after the release.
    sim.run_until(secs(2));
    assert_eq!(granted.get(), 4, "a waiter was orphaned");
}

/// An eviction storm (working set ≫ cache) must never produce wrong bytes:
/// stale soft state falls back to the backend, and every response matches
/// the document's true content.
#[test]
fn eviction_storm_preserves_correctness() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 4);
    let fileset = Rc::new(FileSet::uniform(256, 8 * 1024));
    let backend = Backend::spawn(
        &cluster,
        NodeId(0),
        BackendCfg::default(),
        Rc::clone(&fileset),
    );
    // Tiny caches: ~3 docs per node against a 256-doc working set.
    let cache = CoopCache::build(
        &cluster,
        CacheScheme::Bcc,
        &[NodeId(1), NodeId(2)],
        &[],
        backend,
        Rc::clone(&fileset),
        CacheCfg {
            per_node_bytes: 25 * 1024,
            ..CacheCfg::default()
        },
        NodeId(0),
    );
    let wrong: Rc<std::cell::Cell<u32>> = Rc::default();
    let mut joins = Vec::new();
    for p in [NodeId(1), NodeId(2)] {
        let cache = cache.clone();
        let fs = Rc::clone(&fileset);
        let wrong = Rc::clone(&wrong);
        joins.push(sim.spawn(async move {
            for i in 0..200u32 {
                let doc = (i * 7 + p.0 * 3) % 256;
                let (data, _) = cache.serve(p, doc).await;
                let expect = fs.content(doc as usize, 8 * 1024);
                if data[..] != expect[..] {
                    wrong.set(wrong.get() + 1);
                }
            }
        }));
    }
    sim.run_to(async move {
        for j in joins {
            j.await;
        }
    });
    assert_eq!(wrong.get(), 0, "served corrupted content under thrashing");
    // Thrashing means plenty of misses, and likely some stale fallbacks —
    // but all handled.
    assert!(cache.stats().backend_misses > 100);
}

/// DDSS heap exhaustion surfaces as `None`, poisons nothing, and recovers
/// after frees.
#[test]
fn ddss_exhaustion_recovers() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 2);
    let cfg = DdssConfig {
        heap_bytes: 1024,
        ..DdssConfig::default()
    };
    let ddss = Ddss::new(&cluster, cfg, &[NodeId(0), NodeId(1)]);
    let client = ddss.client(NodeId(0));
    sim.run_to(async move {
        let mut held = Vec::new();
        while let Some(k) = client.allocate(NodeId(1), 100, Coherence::Null).await {
            held.push(k);
        }
        assert!(held.len() >= 8, "heap filled too early: {}", held.len());
        // Still functional for reads/writes on live segments.
        client.put(&held[0], b"alive").await;
        assert_eq!(&client.get(&held[0]).await[..5], b"alive");
        // Free half; allocation works again.
        let n = held.len() / 2;
        for k in held.drain(..n) {
            assert!(client.free(k).await);
        }
        assert!(client
            .allocate(NodeId(1), 100, Coherence::Null)
            .await
            .is_some());
    });
}

/// A permanently saturated cluster: the adaptation agent must not thrash or
/// violate QoS minimums no matter how long the overload lasts.
#[test]
fn saturation_respects_qos_and_stability() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 5);
    let map = SiteMap::new(
        &cluster,
        NodeId(0),
        &[
            (NodeId(1), 0),
            (NodeId(2), 0),
            (NodeId(3), 1),
            (NodeId(4), 1),
        ],
    );
    let monitor = Monitor::spawn(
        &cluster,
        MonitorScheme::RdmaSync,
        MonitorCfg::default(),
        NodeId(0),
        &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)],
    );
    let agent = Reconfigurator::spawn(
        sim.handle(),
        NodeId(0),
        map.clone(),
        monitor,
        2,
        AdaptCfg::fine(2),
    );
    // Overload EVERY node, forever (within the horizon).
    for n in 1..5u32 {
        for _ in 0..8 {
            let cpu = cluster.cpu(NodeId(n));
            sim.spawn(async move { cpu.execute(secs(10)).await });
        }
    }
    sim.run_until(secs(2));
    // Balanced saturation: no reason to move anything.
    assert!(
        agent.moves().len() <= 1,
        "agent thrashed under uniform saturation: {:?}",
        agent.moves()
    );
    assert!(!map.serving(0).is_empty());
    assert!(!map.serving(1).is_empty());
}

/// CCWR's owner going cold (its cached copy evicted between the remote
/// probe and the read) falls back without duplicating the document at the
/// requester.
#[test]
fn ccwr_fallback_never_duplicates() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 4);
    let fileset = Rc::new(FileSet::uniform(64, 8 * 1024));
    let backend = Backend::spawn(
        &cluster,
        NodeId(0),
        BackendCfg::default(),
        Rc::clone(&fileset),
    );
    let cache = CoopCache::build(
        &cluster,
        CacheScheme::Ccwr,
        &[NodeId(1), NodeId(2)],
        &[],
        backend,
        fileset,
        CacheCfg {
            per_node_bytes: 64 * 1024, // ~8 docs — constant churn
            ..CacheCfg::default()
        },
        NodeId(0),
    );
    let c2 = cache.clone();
    sim.run_to(async move {
        for i in 0..120u32 {
            let doc = i % 64;
            let proxy = if i % 2 == 0 { NodeId(1) } else { NodeId(2) };
            let (_, outcome) = c2.serve(proxy, doc).await;
            // Under CCWR a non-owner must never record a local hit.
            if c2.owner_of(doc) != proxy {
                assert_ne!(
                    outcome,
                    ServeOutcome::LocalHit,
                    "doc {doc} duplicated at non-owner {proxy:?}"
                );
            }
        }
    });
}
