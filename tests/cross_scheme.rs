//! Cross-crate sanity: the orderings the paper's figures rest on, checked
//! end to end through the public API.

use nextgen_datacenter::coopcache::CacheScheme;
use nextgen_datacenter::core::{run_hosting, run_webfarm, HostingCfg, WebFarmCfg};
use nextgen_datacenter::dlm::LockMode;
use nextgen_datacenter::resmon::MonitorScheme;

fn farm(scheme: CacheScheme, proxies: usize) -> nextgen_datacenter::core::WebFarmResult {
    run_webfarm(&WebFarmCfg {
        scheme,
        proxies,
        app_nodes: 2,
        num_docs: 256,
        doc_size: 16 * 1024,
        cache_bytes_per_node: 1024 * 1024,
        zipf_alpha: 0.9,
        clients_per_proxy: 6,
        requests: 1_200,
        seed: 99,
        ..WebFarmCfg::default()
    })
}

#[test]
fn caching_hierarchy_holds_end_to_end() {
    let ac = farm(CacheScheme::Ac, 2);
    let bcc = farm(CacheScheme::Bcc, 2);
    let mtacc = farm(CacheScheme::Mtacc, 2);
    // The paper's Figure 6 ordering at a capacity-pressured working set.
    assert!(bcc.tps > ac.tps, "BCC {:.0} vs AC {:.0}", bcc.tps, ac.tps);
    assert!(
        mtacc.tps > bcc.tps,
        "MTACC {:.0} vs BCC {:.0}",
        mtacc.tps,
        bcc.tps
    );
    assert!(mtacc.cache.hit_rate() > ac.cache.hit_rate());
}

#[test]
fn more_proxies_help_cooperative_schemes_more_than_ac() {
    let ac2 = farm(CacheScheme::Ac, 2);
    let ac4 = farm(CacheScheme::Ac, 4);
    let coop2 = farm(CacheScheme::Ccwr, 2);
    let coop4 = farm(CacheScheme::Ccwr, 4);
    let ac_gain = ac4.tps / ac2.tps;
    let coop_gain = coop4.tps / coop2.tps;
    assert!(
        coop_gain > ac_gain,
        "cooperation should scale better: coop {coop_gain:.2} vs ac {ac_gain:.2}"
    );
}

#[test]
fn monitoring_hierarchy_holds_end_to_end() {
    let quick = |scheme| {
        run_hosting(&HostingCfg {
            scheme,
            backends: 4,
            clients: 20,
            requests: 1_200,
            seed: 5,
            ..HostingCfg::default()
        })
        .tps
    };
    let socket_sync = quick(MonitorScheme::SocketSync);
    let rdma_sync = quick(MonitorScheme::RdmaSync);
    let e_rdma = quick(MonitorScheme::ERdmaSync);
    assert!(
        rdma_sync > socket_sync,
        "RDMA {rdma_sync:.0} vs socket {socket_sync:.0}"
    );
    assert!(
        e_rdma > socket_sync,
        "e-RDMA {e_rdma:.0} vs socket {socket_sync:.0}"
    );
}

#[test]
fn lock_cascades_order_as_in_figure_5() {
    use dc_bench_shim::*;
    // Shared cascade at 12 waiters: DQNL worst, N-CoSED best.
    let n = cascade(LockScheme::Ncosed, 12, LockMode::Shared);
    let d = cascade(LockScheme::Dqnl, 12, LockMode::Shared);
    let s = cascade(LockScheme::Srsl, 12, LockMode::Shared);
    assert!(d > s && s > n, "shared cascade: n={n} s={s} d={d}");
    // Exclusive chain: SRSL pays the server round trip per hop.
    let ne = cascade(LockScheme::Ncosed, 12, LockMode::Exclusive);
    let se = cascade(LockScheme::Srsl, 12, LockMode::Exclusive);
    assert!(se > ne, "exclusive cascade: n={ne} s={se}");
}

/// A local reimplementation of the bench's cascade driver, exercising the
/// DLM public API directly (the root package depends on the library crates,
/// not on the bench harness).
mod dc_bench_shim {
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    use nextgen_datacenter::dlm::{DlmConfig, DqnlDlm, LockMode, NcosedDlm, SrslDlm};
    use nextgen_datacenter::fabric::{Cluster, FabricModel, NodeId};
    use nextgen_datacenter::sim::time::ms;
    use nextgen_datacenter::sim::Sim;

    #[derive(Clone, Copy)]
    pub enum LockScheme {
        Ncosed,
        Dqnl,
        Srsl,
    }

    pub fn cascade(scheme: LockScheme, waiters: usize, mode: LockMode) -> u64 {
        let sim = Sim::new();
        let nodes = 2 + waiters;
        let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), nodes);
        let members: Vec<NodeId> = (0..nodes as u32).map(NodeId).collect();
        let release_at: Rc<Cell<u64>> = Rc::default();
        let grants: Rc<RefCell<Vec<u64>>> = Rc::default();
        let h = sim.handle();

        macro_rules! drive {
            ($mgr:expr) => {{
                let mgr = $mgr;
                let holder = mgr.client(NodeId(1));
                let ra = Rc::clone(&release_at);
                let hh = h.clone();
                sim.spawn(async move {
                    holder.lock(0, LockMode::Exclusive).await;
                    hh.sleep(ms(5)).await;
                    ra.set(hh.now());
                    holder.unlock(0).await;
                });
                for (i, &n) in members[2..].iter().enumerate() {
                    let w = mgr.client(n);
                    let g = Rc::clone(&grants);
                    let hh = h.clone();
                    sim.spawn(async move {
                        hh.sleep(ms(1) + (i as u64) * 40_000).await;
                        w.lock(0, mode).await;
                        g.borrow_mut().push(hh.now());
                        w.unlock(0).await;
                    });
                }
            }};
        }
        match scheme {
            LockScheme::Ncosed => {
                drive!(NcosedDlm::new(
                    &cluster,
                    DlmConfig::default(),
                    NodeId(0),
                    1,
                    &members
                ))
            }
            LockScheme::Dqnl => {
                drive!(DqnlDlm::new(
                    &cluster,
                    DlmConfig::default(),
                    NodeId(0),
                    1,
                    &members
                ))
            }
            LockScheme::Srsl => {
                drive!(SrslDlm::new(
                    &cluster,
                    DlmConfig::default(),
                    NodeId(0),
                    &members
                ))
            }
        }
        sim.run();
        let g = grants.borrow();
        assert_eq!(g.len(), waiters);
        g.iter().max().unwrap() - release_at.get()
    }
}
