//! Integrated evaluation (the paper's §6 point that the designs "cannot be
//! evaluated in a standalone fashion"): all three layers — fabric, the two
//! primitives, and the three services — coexist in one simulation on one
//! cluster, interacting through real shared resources (CPUs, links, memory).

use std::rc::Rc;

use nextgen_datacenter::coopcache::{Backend, BackendCfg, CacheCfg, CacheScheme, CoopCache};
use nextgen_datacenter::ddss::{Coherence, Ddss, DdssConfig};
use nextgen_datacenter::dlm::{DlmConfig, LockMode, NcosedDlm};
use nextgen_datacenter::fabric::{Cluster, FabricModel, NodeId};
use nextgen_datacenter::reconfig::{AdaptCfg, Reconfigurator, SiteMap};
use nextgen_datacenter::resmon::{Monitor, MonitorCfg, MonitorScheme};
use nextgen_datacenter::sim::time::{ms, secs, us};
use nextgen_datacenter::sim::Sim;
use nextgen_datacenter::workloads::FileSet;

/// Everything the framework offers, running together on an 8-node cluster:
/// a cooperative cache serving requests while the DLM coordinates writers,
/// DDSS shares operational state, the monitor watches real load, and the
/// reconfigurator stands by.
#[test]
fn full_stack_coexists_in_one_simulation() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 8);
    let all: Vec<NodeId> = (0..8).map(NodeId).collect();

    // Primitives.
    let ddss = Ddss::new(&cluster, DdssConfig::default(), &all);
    let dlm = NcosedDlm::new(&cluster, DlmConfig::default(), NodeId(0), 4, &all);

    // Services.
    let fileset = Rc::new(FileSet::uniform(64, 8 * 1024));
    let backend = Backend::spawn(
        &cluster,
        NodeId(7),
        BackendCfg::default(),
        Rc::clone(&fileset),
    );
    let cache = CoopCache::build(
        &cluster,
        CacheScheme::Hybcc,
        &[NodeId(1), NodeId(2)],
        &[NodeId(3)],
        backend,
        fileset,
        CacheCfg::default(),
        NodeId(0),
    );
    let monitor = Monitor::spawn(
        &cluster,
        MonitorScheme::RdmaSync,
        MonitorCfg::default(),
        NodeId(0),
        &[NodeId(4), NodeId(5)],
    );
    let map = SiteMap::new(&cluster, NodeId(0), &[(NodeId(4), 0), (NodeId(5), 1)]);
    let _agent = Reconfigurator::spawn(
        sim.handle(),
        NodeId(0),
        map.clone(),
        monitor.clone(),
        2,
        AdaptCfg::fine(2),
    );

    // Workload A: cache traffic on the proxies.
    let served: Rc<std::cell::Cell<u32>> = Rc::default();
    for p in [NodeId(1), NodeId(2)] {
        let cache = cache.clone();
        let served = Rc::clone(&served);
        sim.spawn(async move {
            // Two passes: the first warms the tier, the second hits.
            for round in 0..2 {
                for doc in 0..32u32 {
                    let (data, _) = cache.serve(p, doc % 64).await;
                    assert_eq!(data.len(), 8 * 1024, "round {round}");
                    served.set(served.get() + 1);
                }
            }
        });
    }
    // Workload B: DDSS state updates under DLM locks from three nodes.
    let key_owner = ddss.client(NodeId(0));
    let key_cell: Rc<std::cell::RefCell<Option<nextgen_datacenter::ddss::SharedKey>>> =
        Rc::default();
    {
        let kc = Rc::clone(&key_cell);
        sim.spawn(async move {
            let key = key_owner
                .allocate(NodeId(0), 8, Coherence::Version)
                .await
                .unwrap();
            *kc.borrow_mut() = Some(key);
        });
    }
    sim.run_until(ms(5));
    let key = key_cell.borrow().expect("key allocated");
    let counted: Rc<std::cell::Cell<u64>> = Rc::default();
    for n in [NodeId(4), NodeId(5), NodeId(6)] {
        let client = ddss.client(n);
        let lock = dlm.client(n);
        let counted = Rc::clone(&counted);
        let h = sim.handle();
        sim.spawn(async move {
            for _ in 0..10 {
                lock.lock(1, LockMode::Exclusive).await;
                let cur = client.get(&key).await;
                let v = u64::from_le_bytes(cur[..8].try_into().unwrap());
                h.sleep(us(20)).await;
                client.put(&key, &(v + 1).to_le_bytes()).await;
                lock.unlock(1).await;
                counted.set(counted.get() + 1);
            }
        });
    }
    sim.run_until(secs(3));

    // Everything made progress, nothing deadlocked, invariants held.
    assert_eq!(served.get(), 128, "cache traffic incomplete");
    assert_eq!(counted.get(), 30, "locked updates incomplete");
    let reader = ddss.client(NodeId(1));
    let final_v = sim.run_to(async move {
        let raw = reader.get(&key).await;
        u64::from_le_bytes(raw[..8].try_into().unwrap())
    });
    assert_eq!(final_v, 30, "lost update under the DLM");
    assert!(cache.stats().hit_rate() > 0.3);
}

/// The monitor keeps working (and stays accurate) while the cache loads the
/// cluster — services interact through the CPU model, not in isolation.
#[test]
fn monitoring_stays_accurate_under_cache_load() {
    let sim = Sim::new();
    let cluster = Cluster::new(sim.handle(), FabricModel::calibrated_2007(), 5);
    let fileset = Rc::new(FileSet::uniform(128, 16 * 1024));
    let backend = Backend::spawn(
        &cluster,
        NodeId(4),
        BackendCfg::default(),
        Rc::clone(&fileset),
    );
    let cache = CoopCache::build(
        &cluster,
        CacheScheme::Bcc,
        &[NodeId(1), NodeId(2)],
        &[],
        backend,
        fileset,
        CacheCfg::default(),
        NodeId(0),
    );
    let monitor = Monitor::spawn(
        &cluster,
        MonitorScheme::RdmaSync,
        MonitorCfg::default(),
        NodeId(0),
        &[NodeId(1), NodeId(2), NodeId(4)],
    );
    // Drive cache traffic to completion.
    let mut joins = Vec::new();
    for p in [NodeId(1), NodeId(2)] {
        let cache = cache.clone();
        joins.push(sim.spawn(async move {
            for doc in 0..128u32 {
                cache.serve(p, doc % 128).await;
            }
        }));
    }
    sim.run_to(async move {
        for j in joins {
            j.await;
        }
    });
    // The RDMA monitor reads the true accumulated busy counters — the same
    // values the kernel statistics hold locally.
    let cl = cluster.clone();
    let view = sim.run_to(async move { monitor.observe(NodeId(4)).await });
    let truth = cl.cpu(NodeId(4)).snapshot();
    assert_eq!(view.stats.busy_ns, truth.busy_ns);
    assert!(truth.busy_ns > ms(1), "backend never worked");
}
